//! Instrumented ICS protocol targets for the `peachstar` fuzzer.
//!
//! The DAC 2020 Peach\* paper evaluates its fuzzer against six open-source
//! ICS protocol implementations: libmodbus, IEC104, libiec61850, lib60870,
//! libiec_iccp_mod and opendnp3. This crate provides the Rust stand-ins for
//! those targets: six from-scratch packet-processing state machines
//! ([`modbus`], [`iec104`], [`iec61850`], [`lib60870`], [`iccp`], [`dnp3`])
//! that
//!
//! * parse realistic multi-packet-type protocol traffic with deep, branchy
//!   decoders (so that coverage feedback has structure to discover),
//! * are instrumented with [`peachstar_coverage`] edge hooks at every
//!   decision point (the stand-in for the paper's LLVM instrumentation pass),
//! * expose the Peach-pit-style data models of their packets via
//!   [`Target::data_models`], and
//! * contain *planted faults* that mirror the nine previously-unknown
//!   vulnerabilities of Table I (segmentation violations, a heap
//!   use-after-free and a heap buffer overflow), reachable only through
//!   deep, mostly well-formed packets.
//!
//! # Example
//!
//! ```
//! use peachstar_coverage::TraceContext;
//! use peachstar_protocols::{modbus::ModbusServer, Outcome, Target};
//!
//! let mut server = ModbusServer::new();
//! let mut ctx = TraceContext::new();
//! // A well-formed "read holding registers" request.
//! let request = [0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
//! match server.process(&request, &mut ctx) {
//!     Outcome::Response(bytes) => assert_eq!(bytes[7], 0x03),
//!     other => panic!("expected a response, got {other:?}"),
//! }
//! assert!(ctx.trace().edges_hit() > 0, "processing is instrumented");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod common;
pub mod containment;
pub mod dnp3;
pub mod iccp;
pub mod iec104;
pub mod iec61850;
pub mod lib60870;
pub mod modbus;
pub mod prescan;
pub mod server;
pub mod sink;
pub mod wire;

use std::fmt;
use std::sync::{Mutex, OnceLock};

use peachstar_coverage::{SparseTrace, TraceContext, TraceMap};
use peachstar_datamodel::DataModelSet;

pub use prescan::{FrameSpec, PrescanScratch};
pub use server::{serve, serve_with_chaos, ServerHandle, WireChaos};
pub use sink::DecodeSink;
pub use wire::{FrameReassembler, MessageStream, WireFraming};

/// The memory-safety-analogue failure classes reported by targets.
///
/// These mirror the "Vulnerability Type" column of Table I in the paper.
/// Since the targets are safe Rust, the planted bugs do not actually corrupt
/// memory; instead the code path that *would* perform the illegal access in
/// the original C code returns a [`Fault`] describing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Segmentation violation (wild read/write through a bad pointer or
    /// out-of-bounds index).
    Segv,
    /// Heap use-after-free.
    HeapUseAfterFree,
    /// Heap buffer overflow.
    HeapBufferOverflow,
    /// The target would spin or block indefinitely.
    Hang,
    /// The target code itself panicked. Not a planted fault: the
    /// fault-tolerant executor synthesises this kind when `catch_unwind`
    /// contains a real `panic!` escaping [`Target::process`], with the
    /// panic message as the (interned) dedup site.
    Panic,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            FaultKind::Segv => "SEGV",
            FaultKind::HeapUseAfterFree => "heap-use-after-free",
            FaultKind::HeapBufferOverflow => "heap-buffer-overflow",
            FaultKind::Hang => "hang",
            FaultKind::Panic => "panic",
        };
        f.write_str(label)
    }
}

/// Interns a runtime-constructed fault-site string, returning a `'static`
/// reference that is pointer-stable for the life of the process.
///
/// [`Fault::site`] is `&'static str` so that the planted faults cost nothing
/// to construct on the hot path; sites that only exist at runtime — a panic
/// message captured by the containment layer, or a site decoded from a
/// snapshot/artifact file — go through this table instead. Repeated calls
/// with the same text return the same reference, so interned sites dedup in
/// the campaign monitor exactly like planted ones. The table grows one leaked
/// allocation per *distinct* site, which is bounded by the number of unique
/// bugs — not by the number of executions.
#[must_use]
pub fn intern_site(site: &str) -> &'static str {
    static SITES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let sites = SITES.get_or_init(|| Mutex::new(Vec::new()));
    let mut sites = sites.lock().expect("site intern table poisoned");
    if let Some(existing) = sites.iter().find(|existing| **existing == site) {
        return existing;
    }
    let leaked: &'static str = Box::leak(site.to_owned().into_boxed_str());
    sites.push(leaked);
    leaked
}

/// A triggered fault: what kind of memory error the packet would have caused
/// and at which source site (the dedup key the campaign uses for "unique
/// bugs", mirroring ASAN's top-of-stack dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The failure class.
    pub kind: FaultKind,
    /// Stable identifier of the faulting site, e.g.
    /// `"cs101_asdu.c:CS101_ASDU_getCOT"`.
    pub site: &'static str,
}

impl Fault {
    /// Creates a fault record.
    #[must_use]
    pub const fn new(kind: FaultKind, site: &'static str) -> Self {
        Self { kind, site }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.site)
    }
}

/// Outcome of feeding one packet to a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The packet was processed and produced a response (possibly empty for
    /// unconfirmed services).
    Response(Vec<u8>),
    /// The packet was rejected by the protocol's validation logic (malformed
    /// frame, unknown function code, bad length, …). The string names the
    /// rejection reason.
    ProtocolError(String),
    /// The packet reached a planted vulnerability.
    Fault(Fault),
}

impl Outcome {
    /// `true` when the outcome is a [`Outcome::Fault`].
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self, Outcome::Fault(_))
    }

    /// The fault, if this outcome is one.
    #[must_use]
    pub fn fault(&self) -> Option<Fault> {
        match self {
            Outcome::Fault(fault) => Some(*fault),
            _ => None,
        }
    }

    /// The response bytes, if the packet was processed successfully.
    #[must_use]
    pub fn response(&self) -> Option<&[u8]> {
        match self {
            Outcome::Response(bytes) => Some(bytes),
            _ => None,
        }
    }
}

/// What a campaign needs to know about one execution's outcome — the
/// variant plus the fault record, without the response/rejection payloads,
/// so batched and sharded engines can buffer it compactly per execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeSummary {
    /// The packet was processed and answered.
    Response,
    /// The packet was rejected by protocol validation.
    ProtocolError,
    /// The packet reached a planted vulnerability.
    Fault(Fault),
}

impl From<&Outcome> for OutcomeSummary {
    fn from(outcome: &Outcome) -> Self {
        match outcome {
            Outcome::Response(_) => OutcomeSummary::Response,
            Outcome::ProtocolError(_) => OutcomeSummary::ProtocolError,
            Outcome::Fault(fault) => OutcomeSummary::Fault(*fault),
        }
    }
}

/// One window's buffered execution results: an [`OutcomeSummary`] and a
/// [`SparseTrace`] snapshot per packet, in execution order.
///
/// This is the result sink of [`Target::process_batch`]. The buffer is
/// *pooled*: [`begin`](WindowResults::begin) rewinds it without freeing, and
/// [`record`](WindowResults::record) reuses the snapshot allocations of
/// earlier windows, so in the steady state a batched campaign records a
/// whole window of executions without allocating.
#[derive(Debug, Default)]
pub struct WindowResults {
    summaries: Vec<OutcomeSummary>,
    traces: Vec<SparseTrace>,
    len: usize,
    prescan: PrescanScratch,
}

impl WindowResults {
    /// Creates an empty result buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds the buffer for the next window, keeping every allocation.
    pub fn begin(&mut self) {
        self.summaries.clear();
        self.len = 0;
    }

    /// Records one execution's outcome and trace snapshot, in execution
    /// order, reusing a pooled snapshot buffer when one is available.
    pub fn record(&mut self, outcome: &Outcome, trace: &TraceMap) {
        if self.len == self.traces.len() {
            self.traces.push(SparseTrace::new());
        }
        trace.snapshot_into(&mut self.traces[self.len]);
        self.summaries.push(OutcomeSummary::from(outcome));
        self.len += 1;
    }

    /// [`record`](WindowResults::record) for an execution whose trace is
    /// already a [`SparseTrace`] snapshot — a supervised execution ships its
    /// trace back from the watchdog worker thread in sparse form, so the
    /// fault-tolerant window path records it without re-materialising a
    /// dense map first. Pools snapshot buffers exactly like `record`.
    pub fn record_sparse(&mut self, summary: OutcomeSummary, trace: &SparseTrace) {
        if self.len == self.traces.len() {
            self.traces.push(SparseTrace::new());
        }
        self.traces[self.len].copy_from(trace);
        self.summaries.push(summary);
        self.len += 1;
    }

    /// Number of executions recorded since the last
    /// [`begin`](WindowResults::begin).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been recorded since the last
    /// [`begin`](WindowResults::begin).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recorded `(summary, snapshot)` pairs, in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (&OutcomeSummary, &SparseTrace)> {
        self.summaries[..self.len]
            .iter()
            .zip(&self.traces[..self.len])
    }

    /// Detaches the pooled [`PrescanScratch`] so a `process_batch` override
    /// can prescan the window while recording into this buffer (the borrow
    /// checker would reject holding both through one `&mut self`). Pair
    /// with [`return_prescan`](WindowResults::return_prescan) so the
    /// verdict allocation survives into the next window.
    #[must_use]
    pub fn take_prescan(&mut self) -> PrescanScratch {
        std::mem::take(&mut self.prescan)
    }

    /// Returns a detached [`PrescanScratch`] to the pool.
    pub fn return_prescan(&mut self, scratch: PrescanScratch) {
        self.prescan = scratch;
    }

    /// Moves the recorded results out of the buffer, in execution order,
    /// surrendering their snapshot allocations to the caller — for
    /// consumers that must ship owned snapshots elsewhere (a sharded
    /// worker's merge barrier). Snapshots pooled beyond the recorded length
    /// stay behind for the next window.
    pub fn drain(&mut self) -> impl Iterator<Item = (OutcomeSummary, SparseTrace)> + '_ {
        let len = self.len;
        self.len = 0;
        self.summaries.drain(..len).zip(self.traces.drain(..len))
    }
}

/// One fixed packet of a [`SessionTemplate`]: known-good wire bytes plus a
/// display label naming the protocol step they perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPacket {
    /// The wire bytes of the packet, exactly as the target accepts them.
    pub bytes: Vec<u8>,
    /// Human-readable name of the step, e.g. `"STARTDT act"`.
    pub label: &'static str,
}

impl SessionPacket {
    /// Creates a template packet.
    #[must_use]
    pub fn new(bytes: Vec<u8>, label: &'static str) -> Self {
        Self { bytes, label }
    }
}

/// The session lifecycle of a session-capable target: the handshake packets
/// that unlock deep protocol state on a freshly reset target, and the
/// teardown packets that close the session cleanly.
///
/// Stateful ICS endpoints gate most of their decoder behind a link/
/// association handshake (IEC 104 STARTDT, MMS initiate, TASE.2 associate),
/// so a fuzzer that sends one packet at a time against a fresh target never
/// reaches the post-activation code. Session-aware campaigns
/// (`SessionSchedule` in the `peachstar` core crate) replay these packets
/// verbatim at the start and end of every fuzzing *session*, with the
/// mutated payload packets in between.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTemplate {
    /// Packets that open the session, in send order. Every packet must be
    /// accepted by a freshly reset target (each elicits a `Response`).
    pub handshake: Vec<SessionPacket>,
    /// Packets that close the session, in send order.
    pub teardown: Vec<SessionPacket>,
}

impl SessionTemplate {
    /// Creates a template from handshake and teardown packet lists.
    #[must_use]
    pub fn new(handshake: Vec<SessionPacket>, teardown: Vec<SessionPacket>) -> Self {
        Self {
            handshake,
            teardown,
        }
    }

    /// Total number of fixed packets (handshake plus teardown).
    #[must_use]
    pub fn fixed_packets(&self) -> u64 {
        (self.handshake.len() + self.teardown.len()) as u64
    }
}

/// A fuzzing target: an instrumented protocol server the fuzzer feeds
/// packets to.
///
/// Targets are stateful (sessions, register banks, sequence numbers); the
/// campaign decides when to [`reset`](Target::reset) them.
pub trait Target {
    /// Short name of the target, matching the project names used in the
    /// paper (e.g. `"libmodbus"`, `"lib60870"`).
    fn name(&self) -> &'static str;

    /// The format specification (set of per-packet-type data models) the
    /// generation-based fuzzer uses for this target.
    fn data_models(&self) -> DataModelSet;

    /// Processes one packet, recording coverage on `ctx`.
    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome;

    /// Processes one reset-aligned *window* of packets in a single call,
    /// replacing `out`'s previous contents with one `(summary, snapshot)`
    /// pair per packet in execution order.
    ///
    /// The default implementation loops [`process`](Target::process) —
    /// resetting `ctx` before each packet and restarting the target after a
    /// fault, exactly as the per-execution executor does — so every target
    /// supports batching out of the box. Servers can override it to hoist
    /// per-packet setup out of the loop: the override runs its packet loop
    /// with *static* dispatch (one virtual call per window instead of one
    /// per packet), and can prevalidate window-constant framing with the
    /// vectorised [`prescan`] substrate in a tight prepass over the
    /// headers.
    ///
    /// `sink` selects the output fidelity for the whole window (see
    /// [`DecodeSink`]): [`DecodeSink::Summary`] skips response assembly and
    /// error-string formatting, which `out` never records anyway. An
    /// override must arm the sink around its packet loop exactly like the
    /// default implementation does.
    ///
    /// # Contract
    ///
    /// For every packet the recorded outcome and trace must be **identical**
    /// to what a [`process`](Target::process) loop over the same packets
    /// would record — batched campaigns are required to be bit-identical to
    /// sequential ones, so an override must not skip or reorder any
    /// instrumented work whose edges land in the trace, and the sink may
    /// only elide payload bytes, never an outcome variant or a state
    /// mutation. After a [`Outcome::Fault`] the target must restart itself
    /// (via [`reset`](Target::reset)) before the next packet.
    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut WindowResults,
        sink: DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        for packet in packets {
            ctx.reset();
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            out.record(&outcome, ctx.trace());
        }
    }

    /// Resets all session state to the just-started condition.
    fn reset(&mut self);

    /// Creates a fresh, just-started instance of the same target.
    ///
    /// This is the factory seam sharded campaigns use to give every worker
    /// thread its own target copy (hence the `Send` bound). The returned
    /// instance must be indistinguishable from the state
    /// [`reset`](Target::reset) restores, so that executing a reset-aligned
    /// slice of a campaign on a fresh copy produces exactly the outcomes the
    /// sequential campaign would.
    fn clone_fresh(&self) -> Box<dyn Target + Send>;

    /// The session lifecycle of this target, when it has one.
    ///
    /// Session-capable targets (protocols whose deep state hides behind a
    /// handshake) advertise known-good handshake and teardown packets here;
    /// session-aware campaigns replay them around every burst of mutated
    /// payload packets. Sessionless targets (Modbus, DNP3 in this crate —
    /// every request is self-contained) keep the default `None`.
    fn session_template(&self) -> Option<SessionTemplate> {
        None
    }
}

/// Identifier of one of the six built-in targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetId {
    /// The Modbus/TCP server (libmodbus stand-in).
    Modbus,
    /// The IEC 60870-5-104 server (IEC104 project stand-in).
    Iec104,
    /// The IEC 61850 MMS server (libiec61850 stand-in).
    Iec61850,
    /// The IEC 60870-5-101/104 server (lib60870 stand-in).
    Lib60870,
    /// The ICCP / TASE.2 server (libiec_iccp_mod stand-in).
    Iccp,
    /// The DNP3 outstation (opendnp3 stand-in).
    Dnp3,
}

impl TargetId {
    /// All built-in targets, in the order the paper's Figure 4 lists its
    /// sub-plots.
    pub const ALL: [TargetId; 6] = [
        TargetId::Modbus,
        TargetId::Iec104,
        TargetId::Iec61850,
        TargetId::Lib60870,
        TargetId::Iccp,
        TargetId::Dnp3,
    ];

    /// The project name used in the paper.
    #[must_use]
    pub const fn project_name(self) -> &'static str {
        match self {
            TargetId::Modbus => "libmodbus",
            TargetId::Iec104 => "IEC104",
            TargetId::Iec61850 => "libiec61850",
            TargetId::Lib60870 => "lib60870",
            TargetId::Iccp => "libiec_iccp_mod",
            TargetId::Dnp3 => "opendnp3",
        }
    }

    /// Instantiates the target.
    #[must_use]
    pub fn create(self) -> Box<dyn Target> {
        match self {
            TargetId::Modbus => Box::new(modbus::ModbusServer::new()),
            TargetId::Iec104 => Box::new(iec104::Iec104Server::new()),
            TargetId::Iec61850 => Box::new(iec61850::MmsServer::new()),
            TargetId::Lib60870 => Box::new(lib60870::Lib60870Server::new()),
            TargetId::Iccp => Box::new(iccp::IccpServer::new()),
            TargetId::Dnp3 => Box::new(dnp3::Dnp3Outstation::new()),
        }
    }

    /// Instantiates the target as a `Send` trait object — for consumers
    /// that must move the instance to another thread (the hang watchdog's
    /// supervised worker, a replayed crash artifact).
    #[must_use]
    pub fn create_send(self) -> Box<dyn Target + Send> {
        match self {
            TargetId::Modbus => Box::new(modbus::ModbusServer::new()),
            TargetId::Iec104 => Box::new(iec104::Iec104Server::new()),
            TargetId::Iec61850 => Box::new(iec61850::MmsServer::new()),
            TargetId::Lib60870 => Box::new(lib60870::Lib60870Server::new()),
            TargetId::Iccp => Box::new(iccp::IccpServer::new()),
            TargetId::Dnp3 => Box::new(dnp3::Dnp3Outstation::new()),
        }
    }

    /// Parses a project name (as printed by [`TargetId::project_name`]) or a
    /// short alias (`modbus`, `iec104`, `iec61850`, `lib60870`, `iccp`,
    /// `dnp3`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "libmodbus" | "modbus" => Some(TargetId::Modbus),
            "iec104" => Some(TargetId::Iec104),
            "libiec61850" | "iec61850" | "mms" => Some(TargetId::Iec61850),
            "lib60870" | "cs104" | "cs101" => Some(TargetId::Lib60870),
            "libiec_iccp_mod" | "iccp" | "tase2" => Some(TargetId::Iccp),
            "opendnp3" | "dnp3" => Some(TargetId::Dnp3),
            _ => None,
        }
    }
}

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.project_name())
    }
}

/// Instantiates every built-in target.
#[must_use]
pub fn all_targets() -> Vec<Box<dyn Target>> {
    TargetId::ALL.iter().map(|id| id.create()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_ids_roundtrip_through_parse() {
        for id in TargetId::ALL {
            assert_eq!(TargetId::parse(id.project_name()), Some(id));
        }
        assert_eq!(TargetId::parse("modbus"), Some(TargetId::Modbus));
        assert_eq!(TargetId::parse("unknown"), None);
    }

    #[test]
    fn all_targets_have_models_and_names() {
        for mut target in all_targets() {
            assert!(!target.name().is_empty());
            let models = target.data_models();
            assert!(
                !models.is_empty(),
                "{} must expose at least one data model",
                target.name()
            );
            // Every target must at least reject an empty packet without
            // panicking and without faulting.
            let mut ctx = TraceContext::new();
            let outcome = target.process(&[], &mut ctx);
            assert!(!outcome.is_fault(), "{}: empty packet must not fault", target.name());
        }
    }

    #[test]
    fn clone_fresh_matches_reset_state() {
        // Sharded campaigns execute reset-aligned slices on clone_fresh
        // copies; that is only sound if a fresh instance, a reset instance
        // and a clone_fresh copy all behave identically. Drive each with the
        // same packet sequence (every model's default emission) and compare
        // outcomes and traces.
        use peachstar_datamodel::emit::emit_default;
        for id in TargetId::ALL {
            let mut original = id.create();
            let packets: Vec<Vec<u8>> = original
                .data_models()
                .models()
                .iter()
                .map(|model| emit_default(model).expect("default emission"))
                .collect();
            let drive = |target: &mut dyn Target| -> Vec<(Outcome, Vec<u8>)> {
                packets
                    .iter()
                    .map(|packet| {
                        let mut ctx = TraceContext::new();
                        let outcome = target.process(packet, &mut ctx);
                        (outcome, ctx.trace().as_bytes().to_vec())
                    })
                    .collect()
            };
            let fresh_run = drive(original.as_mut());
            // Dirty the original, then reset: must match the fresh run.
            original.reset();
            let reset_run = drive(original.as_mut());
            assert_eq!(fresh_run, reset_run, "{id}: reset != fresh behaviour");
            // A clone taken from the dirty original must also start fresh.
            let mut clone = original.clone_fresh();
            assert_eq!(clone.name(), original.name());
            let clone_run = drive(clone.as_mut());
            assert_eq!(fresh_run, clone_run, "{id}: clone_fresh != fresh");
        }
    }

    #[test]
    fn session_templates_open_deep_state_on_a_fresh_target() {
        // The contract session campaigns rely on: every handshake packet of
        // a session template is accepted (elicits a response) by a freshly
        // reset target, in order, and so is every teardown packet afterwards.
        let mut capable = 0;
        for id in TargetId::ALL {
            let mut target = id.create();
            let Some(template) = target.session_template() else {
                continue;
            };
            capable += 1;
            assert!(
                !template.handshake.is_empty(),
                "{id}: a session template needs at least one handshake packet"
            );
            let mut ctx = TraceContext::new();
            for packet in template.handshake.iter().chain(&template.teardown) {
                let outcome = target.process(&packet.bytes, &mut ctx);
                assert!(
                    outcome.response().is_some(),
                    "{id}: template packet `{}` rejected: {outcome:?}",
                    packet.label
                );
            }
            // The template must be stable: a reset target accepts it again.
            target.reset();
            let mut ctx = TraceContext::new();
            for packet in &template.handshake {
                assert!(
                    target.process(&packet.bytes, &mut ctx).response().is_some(),
                    "{id}: handshake `{}` rejected after reset",
                    packet.label
                );
            }
        }
        assert_eq!(
            capable, 4,
            "iec104, lib60870, iec61850 and iccp advertise session templates"
        );
    }

    #[test]
    fn process_batch_matches_a_sequential_process_loop() {
        // The batched entry point's contract: per-packet outcomes and trace
        // snapshots are identical to looping `process`, for the default
        // implementation and for every override (modbus and iec104 ship
        // devirtualised overrides with a framing prescan). Drive each target
        // with a window mixing well-formed packets, malformed frames and
        // repeats, comparing against an independent per-packet loop.
        use peachstar_datamodel::emit::emit_default;
        for id in TargetId::ALL {
            let mut sequential = id.create();
            let mut batched = id.create();
            let mut window: Vec<Vec<u8>> = sequential
                .data_models()
                .models()
                .iter()
                .map(|model| emit_default(model).expect("default emission"))
                .collect();
            window.push(Vec::new()); // empty frame
            window.push(vec![0xFF; 3]); // short garbage
            window.push(vec![0x68, 0x04, 0x07, 0x00, 0x00, 0x00]); // 104 STARTDT bytes
            let mut corrupted = window[0].clone();
            if let Some(byte) = corrupted.get_mut(1) {
                *byte ^= 0xA5;
            }
            window.push(corrupted);
            let repeat = window[0].clone();
            window.push(repeat); // state-dependent repeat at the window end

            // Reference: the per-execution loop, exactly as the default impl
            // documents it.
            let mut ctx = TraceContext::new();
            let mut expected: Vec<(OutcomeSummary, peachstar_coverage::SparseTrace)> = Vec::new();
            for packet in &window {
                ctx.reset();
                let outcome = sequential.process(packet, &mut ctx);
                if outcome.is_fault() {
                    sequential.reset();
                }
                expected.push((OutcomeSummary::from(&outcome), ctx.trace().to_sparse()));
            }

            let refs: Vec<&[u8]> = window.iter().map(Vec::as_slice).collect();
            let mut ctx = TraceContext::new();
            let mut results = WindowResults::new();
            // Two rounds through the same pooled buffer: the second proves
            // `begin` + pooled snapshots leave no stale state behind.
            batched.process_batch(&refs, &mut ctx, &mut results, DecodeSink::Full);
            batched.reset();
            batched.process_batch(&refs, &mut ctx, &mut results, DecodeSink::Full);
            assert_eq!(results.len(), window.len(), "{id}");
            for (index, (summary, trace)) in results.iter().enumerate() {
                assert_eq!(*summary, expected[index].0, "{id}: packet {index} outcome");
                assert_eq!(*trace, expected[index].1, "{id}: packet {index} trace");
            }

            // The summary sink must record the same summaries and traces —
            // it only skips payload construction, which `WindowResults`
            // never stores. Third round through the pooled buffer.
            let mut summary_target = id.create();
            summary_target.process_batch(&refs, &mut ctx, &mut results, DecodeSink::Summary);
            assert_eq!(results.len(), window.len(), "{id} (summary)");
            for (index, (summary, trace)) in results.iter().enumerate() {
                assert_eq!(*summary, expected[index].0, "{id}: packet {index} summary-sink outcome");
                assert_eq!(*trace, expected[index].1, "{id}: packet {index} summary-sink trace");
            }
        }
    }

    #[test]
    fn window_results_pool_and_rewind() {
        let mut results = WindowResults::new();
        assert!(results.is_empty());
        let mut ctx = TraceContext::new();
        ctx.edge(peachstar_coverage::EdgeId::new(7));
        results.record(&Outcome::Response(vec![1]), ctx.trace());
        results.record(
            &Outcome::Fault(Fault::new(FaultKind::Segv, "x")),
            ctx.trace(),
        );
        assert_eq!(results.len(), 2);
        let summaries: Vec<OutcomeSummary> = results.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            summaries,
            vec![
                OutcomeSummary::Response,
                OutcomeSummary::Fault(Fault::new(FaultKind::Segv, "x"))
            ]
        );
        results.begin();
        assert!(results.is_empty());
        assert_eq!(results.iter().count(), 0, "rewound results are invisible");
        results.record(&Outcome::ProtocolError("bad".into()), ctx.trace());
        assert_eq!(results.len(), 1);
        assert_eq!(
            results.iter().next().map(|(s, _)| *s),
            Some(OutcomeSummary::ProtocolError)
        );
    }

    #[test]
    fn outcome_accessors() {
        let ok = Outcome::Response(vec![1, 2, 3]);
        assert_eq!(ok.response(), Some(&[1u8, 2, 3][..]));
        assert!(!ok.is_fault());
        let fault = Outcome::Fault(Fault::new(FaultKind::Segv, "here"));
        assert!(fault.is_fault());
        assert_eq!(fault.fault().unwrap().kind, FaultKind::Segv);
        assert_eq!(fault.response(), None);
    }

    #[test]
    fn fault_display_mentions_kind_and_site() {
        let fault = Fault::new(FaultKind::HeapUseAfterFree, "modbus.c:write_reg");
        let text = fault.to_string();
        assert!(text.contains("heap-use-after-free"));
        assert!(text.contains("modbus.c:write_reg"));
        let panic = Fault::new(FaultKind::Panic, intern_site("panic: boom"));
        assert_eq!(panic.to_string(), "panic at panic: boom");
    }

    #[test]
    fn intern_site_dedups_to_pointer_identical_statics() {
        let a = intern_site("chaos: injected panic #1");
        let b = intern_site(&format!("chaos: injected panic #{}", 1));
        // Pointer equality, not just content equality — faults dedup by site
        // pointer-compatible `&'static str` semantics in hash sets.
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "chaos: injected panic #1");
        let c = intern_site("chaos: injected panic #2");
        assert!(!std::ptr::eq(a, c));
    }

    #[test]
    fn record_sparse_matches_record() {
        let mut ctx = TraceContext::new();
        ctx.edge(peachstar_coverage::EdgeId::new(42));
        ctx.edge(peachstar_coverage::EdgeId::new(7));
        let outcome = Outcome::Response(vec![1, 2]);
        let mut dense = WindowResults::new();
        dense.record(&outcome, ctx.trace());
        let mut sparse = WindowResults::new();
        sparse.record_sparse(OutcomeSummary::from(&outcome), &ctx.trace().to_sparse());
        let dense_row: Vec<_> = dense.iter().map(|(s, t)| (*s, t.clone())).collect();
        let sparse_row: Vec<_> = sparse.iter().map(|(s, t)| (*s, t.clone())).collect();
        assert_eq!(dense_row, sparse_row);
    }
}
