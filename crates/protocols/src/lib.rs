//! Instrumented ICS protocol targets for the `peachstar` fuzzer.
//!
//! The DAC 2020 Peach\* paper evaluates its fuzzer against six open-source
//! ICS protocol implementations: libmodbus, IEC104, libiec61850, lib60870,
//! libiec_iccp_mod and opendnp3. This crate provides the Rust stand-ins for
//! those targets: six from-scratch packet-processing state machines
//! ([`modbus`], [`iec104`], [`iec61850`], [`lib60870`], [`iccp`], [`dnp3`])
//! that
//!
//! * parse realistic multi-packet-type protocol traffic with deep, branchy
//!   decoders (so that coverage feedback has structure to discover),
//! * are instrumented with [`peachstar_coverage`] edge hooks at every
//!   decision point (the stand-in for the paper's LLVM instrumentation pass),
//! * expose the Peach-pit-style data models of their packets via
//!   [`Target::data_models`], and
//! * contain *planted faults* that mirror the nine previously-unknown
//!   vulnerabilities of Table I (segmentation violations, a heap
//!   use-after-free and a heap buffer overflow), reachable only through
//!   deep, mostly well-formed packets.
//!
//! # Example
//!
//! ```
//! use peachstar_coverage::TraceContext;
//! use peachstar_protocols::{modbus::ModbusServer, Outcome, Target};
//!
//! let mut server = ModbusServer::new();
//! let mut ctx = TraceContext::new();
//! // A well-formed "read holding registers" request.
//! let request = [0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
//! match server.process(&request, &mut ctx) {
//!     Outcome::Response(bytes) => assert_eq!(bytes[7], 0x03),
//!     other => panic!("expected a response, got {other:?}"),
//! }
//! assert!(ctx.trace().edges_hit() > 0, "processing is instrumented");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod dnp3;
pub mod iccp;
pub mod iec104;
pub mod iec61850;
pub mod lib60870;
pub mod modbus;

use std::fmt;

use peachstar_coverage::TraceContext;
use peachstar_datamodel::DataModelSet;

/// The memory-safety-analogue failure classes reported by targets.
///
/// These mirror the "Vulnerability Type" column of Table I in the paper.
/// Since the targets are safe Rust, the planted bugs do not actually corrupt
/// memory; instead the code path that *would* perform the illegal access in
/// the original C code returns a [`Fault`] describing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Segmentation violation (wild read/write through a bad pointer or
    /// out-of-bounds index).
    Segv,
    /// Heap use-after-free.
    HeapUseAfterFree,
    /// Heap buffer overflow.
    HeapBufferOverflow,
    /// The target would spin or block indefinitely.
    Hang,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            FaultKind::Segv => "SEGV",
            FaultKind::HeapUseAfterFree => "heap-use-after-free",
            FaultKind::HeapBufferOverflow => "heap-buffer-overflow",
            FaultKind::Hang => "hang",
        };
        f.write_str(label)
    }
}

/// A triggered fault: what kind of memory error the packet would have caused
/// and at which source site (the dedup key the campaign uses for "unique
/// bugs", mirroring ASAN's top-of-stack dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The failure class.
    pub kind: FaultKind,
    /// Stable identifier of the faulting site, e.g.
    /// `"cs101_asdu.c:CS101_ASDU_getCOT"`.
    pub site: &'static str,
}

impl Fault {
    /// Creates a fault record.
    #[must_use]
    pub const fn new(kind: FaultKind, site: &'static str) -> Self {
        Self { kind, site }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.site)
    }
}

/// Outcome of feeding one packet to a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The packet was processed and produced a response (possibly empty for
    /// unconfirmed services).
    Response(Vec<u8>),
    /// The packet was rejected by the protocol's validation logic (malformed
    /// frame, unknown function code, bad length, …). The string names the
    /// rejection reason.
    ProtocolError(String),
    /// The packet reached a planted vulnerability.
    Fault(Fault),
}

impl Outcome {
    /// `true` when the outcome is a [`Outcome::Fault`].
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self, Outcome::Fault(_))
    }

    /// The fault, if this outcome is one.
    #[must_use]
    pub fn fault(&self) -> Option<Fault> {
        match self {
            Outcome::Fault(fault) => Some(*fault),
            _ => None,
        }
    }

    /// The response bytes, if the packet was processed successfully.
    #[must_use]
    pub fn response(&self) -> Option<&[u8]> {
        match self {
            Outcome::Response(bytes) => Some(bytes),
            _ => None,
        }
    }
}

/// One fixed packet of a [`SessionTemplate`]: known-good wire bytes plus a
/// display label naming the protocol step they perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPacket {
    /// The wire bytes of the packet, exactly as the target accepts them.
    pub bytes: Vec<u8>,
    /// Human-readable name of the step, e.g. `"STARTDT act"`.
    pub label: &'static str,
}

impl SessionPacket {
    /// Creates a template packet.
    #[must_use]
    pub fn new(bytes: Vec<u8>, label: &'static str) -> Self {
        Self { bytes, label }
    }
}

/// The session lifecycle of a session-capable target: the handshake packets
/// that unlock deep protocol state on a freshly reset target, and the
/// teardown packets that close the session cleanly.
///
/// Stateful ICS endpoints gate most of their decoder behind a link/
/// association handshake (IEC 104 STARTDT, MMS initiate, TASE.2 associate),
/// so a fuzzer that sends one packet at a time against a fresh target never
/// reaches the post-activation code. Session-aware campaigns
/// (`SessionSchedule` in the `peachstar` core crate) replay these packets
/// verbatim at the start and end of every fuzzing *session*, with the
/// mutated payload packets in between.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTemplate {
    /// Packets that open the session, in send order. Every packet must be
    /// accepted by a freshly reset target (each elicits a `Response`).
    pub handshake: Vec<SessionPacket>,
    /// Packets that close the session, in send order.
    pub teardown: Vec<SessionPacket>,
}

impl SessionTemplate {
    /// Creates a template from handshake and teardown packet lists.
    #[must_use]
    pub fn new(handshake: Vec<SessionPacket>, teardown: Vec<SessionPacket>) -> Self {
        Self {
            handshake,
            teardown,
        }
    }

    /// Total number of fixed packets (handshake plus teardown).
    #[must_use]
    pub fn fixed_packets(&self) -> u64 {
        (self.handshake.len() + self.teardown.len()) as u64
    }
}

/// A fuzzing target: an instrumented protocol server the fuzzer feeds
/// packets to.
///
/// Targets are stateful (sessions, register banks, sequence numbers); the
/// campaign decides when to [`reset`](Target::reset) them.
pub trait Target {
    /// Short name of the target, matching the project names used in the
    /// paper (e.g. `"libmodbus"`, `"lib60870"`).
    fn name(&self) -> &'static str;

    /// The format specification (set of per-packet-type data models) the
    /// generation-based fuzzer uses for this target.
    fn data_models(&self) -> DataModelSet;

    /// Processes one packet, recording coverage on `ctx`.
    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome;

    /// Resets all session state to the just-started condition.
    fn reset(&mut self);

    /// Creates a fresh, just-started instance of the same target.
    ///
    /// This is the factory seam sharded campaigns use to give every worker
    /// thread its own target copy (hence the `Send` bound). The returned
    /// instance must be indistinguishable from the state
    /// [`reset`](Target::reset) restores, so that executing a reset-aligned
    /// slice of a campaign on a fresh copy produces exactly the outcomes the
    /// sequential campaign would.
    fn clone_fresh(&self) -> Box<dyn Target + Send>;

    /// The session lifecycle of this target, when it has one.
    ///
    /// Session-capable targets (protocols whose deep state hides behind a
    /// handshake) advertise known-good handshake and teardown packets here;
    /// session-aware campaigns replay them around every burst of mutated
    /// payload packets. Sessionless targets (Modbus, DNP3 in this crate —
    /// every request is self-contained) keep the default `None`.
    fn session_template(&self) -> Option<SessionTemplate> {
        None
    }
}

/// Identifier of one of the six built-in targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetId {
    /// The Modbus/TCP server (libmodbus stand-in).
    Modbus,
    /// The IEC 60870-5-104 server (IEC104 project stand-in).
    Iec104,
    /// The IEC 61850 MMS server (libiec61850 stand-in).
    Iec61850,
    /// The IEC 60870-5-101/104 server (lib60870 stand-in).
    Lib60870,
    /// The ICCP / TASE.2 server (libiec_iccp_mod stand-in).
    Iccp,
    /// The DNP3 outstation (opendnp3 stand-in).
    Dnp3,
}

impl TargetId {
    /// All built-in targets, in the order the paper's Figure 4 lists its
    /// sub-plots.
    pub const ALL: [TargetId; 6] = [
        TargetId::Modbus,
        TargetId::Iec104,
        TargetId::Iec61850,
        TargetId::Lib60870,
        TargetId::Iccp,
        TargetId::Dnp3,
    ];

    /// The project name used in the paper.
    #[must_use]
    pub const fn project_name(self) -> &'static str {
        match self {
            TargetId::Modbus => "libmodbus",
            TargetId::Iec104 => "IEC104",
            TargetId::Iec61850 => "libiec61850",
            TargetId::Lib60870 => "lib60870",
            TargetId::Iccp => "libiec_iccp_mod",
            TargetId::Dnp3 => "opendnp3",
        }
    }

    /// Instantiates the target.
    #[must_use]
    pub fn create(self) -> Box<dyn Target> {
        match self {
            TargetId::Modbus => Box::new(modbus::ModbusServer::new()),
            TargetId::Iec104 => Box::new(iec104::Iec104Server::new()),
            TargetId::Iec61850 => Box::new(iec61850::MmsServer::new()),
            TargetId::Lib60870 => Box::new(lib60870::Lib60870Server::new()),
            TargetId::Iccp => Box::new(iccp::IccpServer::new()),
            TargetId::Dnp3 => Box::new(dnp3::Dnp3Outstation::new()),
        }
    }

    /// Parses a project name (as printed by [`TargetId::project_name`]) or a
    /// short alias (`modbus`, `iec104`, `iec61850`, `lib60870`, `iccp`,
    /// `dnp3`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "libmodbus" | "modbus" => Some(TargetId::Modbus),
            "iec104" => Some(TargetId::Iec104),
            "libiec61850" | "iec61850" | "mms" => Some(TargetId::Iec61850),
            "lib60870" | "cs104" | "cs101" => Some(TargetId::Lib60870),
            "libiec_iccp_mod" | "iccp" | "tase2" => Some(TargetId::Iccp),
            "opendnp3" | "dnp3" => Some(TargetId::Dnp3),
            _ => None,
        }
    }
}

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.project_name())
    }
}

/// Instantiates every built-in target.
#[must_use]
pub fn all_targets() -> Vec<Box<dyn Target>> {
    TargetId::ALL.iter().map(|id| id.create()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_ids_roundtrip_through_parse() {
        for id in TargetId::ALL {
            assert_eq!(TargetId::parse(id.project_name()), Some(id));
        }
        assert_eq!(TargetId::parse("modbus"), Some(TargetId::Modbus));
        assert_eq!(TargetId::parse("unknown"), None);
    }

    #[test]
    fn all_targets_have_models_and_names() {
        for mut target in all_targets() {
            assert!(!target.name().is_empty());
            let models = target.data_models();
            assert!(
                !models.is_empty(),
                "{} must expose at least one data model",
                target.name()
            );
            // Every target must at least reject an empty packet without
            // panicking and without faulting.
            let mut ctx = TraceContext::new();
            let outcome = target.process(&[], &mut ctx);
            assert!(!outcome.is_fault(), "{}: empty packet must not fault", target.name());
        }
    }

    #[test]
    fn clone_fresh_matches_reset_state() {
        // Sharded campaigns execute reset-aligned slices on clone_fresh
        // copies; that is only sound if a fresh instance, a reset instance
        // and a clone_fresh copy all behave identically. Drive each with the
        // same packet sequence (every model's default emission) and compare
        // outcomes and traces.
        use peachstar_datamodel::emit::emit_default;
        for id in TargetId::ALL {
            let mut original = id.create();
            let packets: Vec<Vec<u8>> = original
                .data_models()
                .models()
                .iter()
                .map(|model| emit_default(model).expect("default emission"))
                .collect();
            let drive = |target: &mut dyn Target| -> Vec<(Outcome, Vec<u8>)> {
                packets
                    .iter()
                    .map(|packet| {
                        let mut ctx = TraceContext::new();
                        let outcome = target.process(packet, &mut ctx);
                        (outcome, ctx.trace().as_bytes().to_vec())
                    })
                    .collect()
            };
            let fresh_run = drive(original.as_mut());
            // Dirty the original, then reset: must match the fresh run.
            original.reset();
            let reset_run = drive(original.as_mut());
            assert_eq!(fresh_run, reset_run, "{id}: reset != fresh behaviour");
            // A clone taken from the dirty original must also start fresh.
            let mut clone = original.clone_fresh();
            assert_eq!(clone.name(), original.name());
            let clone_run = drive(clone.as_mut());
            assert_eq!(fresh_run, clone_run, "{id}: clone_fresh != fresh");
        }
    }

    #[test]
    fn session_templates_open_deep_state_on_a_fresh_target() {
        // The contract session campaigns rely on: every handshake packet of
        // a session template is accepted (elicits a response) by a freshly
        // reset target, in order, and so is every teardown packet afterwards.
        let mut capable = 0;
        for id in TargetId::ALL {
            let mut target = id.create();
            let Some(template) = target.session_template() else {
                continue;
            };
            capable += 1;
            assert!(
                !template.handshake.is_empty(),
                "{id}: a session template needs at least one handshake packet"
            );
            let mut ctx = TraceContext::new();
            for packet in template.handshake.iter().chain(&template.teardown) {
                let outcome = target.process(&packet.bytes, &mut ctx);
                assert!(
                    outcome.response().is_some(),
                    "{id}: template packet `{}` rejected: {outcome:?}",
                    packet.label
                );
            }
            // The template must be stable: a reset target accepts it again.
            target.reset();
            let mut ctx = TraceContext::new();
            for packet in &template.handshake {
                assert!(
                    target.process(&packet.bytes, &mut ctx).response().is_some(),
                    "{id}: handshake `{}` rejected after reset",
                    packet.label
                );
            }
        }
        assert_eq!(
            capable, 4,
            "iec104, lib60870, iec61850 and iccp advertise session templates"
        );
    }

    #[test]
    fn outcome_accessors() {
        let ok = Outcome::Response(vec![1, 2, 3]);
        assert_eq!(ok.response(), Some(&[1u8, 2, 3][..]));
        assert!(!ok.is_fault());
        let fault = Outcome::Fault(Fault::new(FaultKind::Segv, "here"));
        assert!(fault.is_fault());
        assert_eq!(fault.fault().unwrap().kind, FaultKind::Segv);
        assert_eq!(fault.response(), None);
    }

    #[test]
    fn fault_display_mentions_kind_and_site() {
        let fault = Fault::new(FaultKind::HeapUseAfterFree, "modbus.c:write_reg");
        let text = fault.to_string();
        assert!(text.contains("heap-use-after-free"));
        assert!(text.contains("modbus.c:write_reg"));
    }
}
