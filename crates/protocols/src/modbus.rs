//! The Modbus/TCP server target (stand-in for libmodbus).
//!
//! Implements MBAP framing plus the common public function codes: read
//! coils / discrete inputs / holding registers / input registers, write
//! single coil / register, write multiple coils / registers, mask write,
//! read/write multiple and a small diagnostics subset. Two faults mirroring
//! the libmodbus row of Table I are planted:
//!
//! * a **heap use-after-free** analogue on the `write_multiple_registers`
//!   path: a preceding diagnostic "restart communications option" request
//!   frees the register mapping, and the stale mapping is reused by the next
//!   deep write request;
//! * a **SEGV** analogue in the `read_write_multiple_registers` handler,
//!   which indexes the register mapping with an unvalidated combined offset.

use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::{
    BlockBuilder, DataModelBuilder, DataModelSet, NumberSpec, Relation,
};

use crate::common::{read_u16_be, PointDatabase};
use crate::{Fault, FaultKind, Outcome, Target};

/// Modbus exception codes used in error responses.
mod exception {
    pub const ILLEGAL_FUNCTION: u8 = 0x01;
    pub const ILLEGAL_DATA_ADDRESS: u8 = 0x02;
    pub const ILLEGAL_DATA_VALUE: u8 = 0x03;
}

/// Function codes implemented by the server.
mod function {
    pub const READ_COILS: u8 = 0x01;
    pub const READ_DISCRETE_INPUTS: u8 = 0x02;
    pub const READ_HOLDING_REGISTERS: u8 = 0x03;
    pub const READ_INPUT_REGISTERS: u8 = 0x04;
    pub const WRITE_SINGLE_COIL: u8 = 0x05;
    pub const WRITE_SINGLE_REGISTER: u8 = 0x06;
    pub const DIAGNOSTICS: u8 = 0x08;
    pub const WRITE_MULTIPLE_COILS: u8 = 0x0F;
    pub const WRITE_MULTIPLE_REGISTERS: u8 = 0x10;
    pub const MASK_WRITE_REGISTER: u8 = 0x16;
    pub const READ_WRITE_MULTIPLE_REGISTERS: u8 = 0x17;
}

/// The Modbus/TCP server.
///
/// See the [module documentation](self) for the planted faults.
#[derive(Debug)]
pub struct ModbusServer {
    db: PointDatabase,
    /// Set by the diagnostics "restart communications" sub-function; models
    /// the freed register mapping of the planted use-after-free.
    mapping_freed: bool,
    requests_served: u64,
}

impl ModbusServer {
    /// Creates a server with the default 128-register / 64-coil process
    /// image.
    #[must_use]
    pub fn new() -> Self {
        Self {
            db: PointDatabase::default(),
            mapping_freed: false,
            requests_served: 0,
        }
    }

    /// Number of requests processed since creation or the last reset.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    fn exception(transaction: u16, unit: u8, function: u8, code: u8) -> Outcome {
        crate::sink::response_with(9, |response| {
            response.extend_from_slice(&transaction.to_be_bytes());
            response.extend_from_slice(&[0x00, 0x00, 0x00, 0x03, unit, function | 0x80, code]);
        })
    }

    fn reply(transaction: u16, unit: u8, pdu: &[u8]) -> Outcome {
        crate::sink::response_with(7 + pdu.len(), |response| {
            response.extend_from_slice(&transaction.to_be_bytes());
            response.extend_from_slice(&[0x00, 0x00]);
            response.extend_from_slice(&((pdu.len() + 1) as u16).to_be_bytes());
            response.push(unit);
            response.extend_from_slice(pdu);
        })
    }

    #[allow(clippy::too_many_lines)]
    fn handle_pdu(
        &mut self,
        transaction: u16,
        unit: u8,
        pdu: &[u8],
        ctx: &mut TraceContext,
    ) -> Outcome {
        cov_edge!(ctx);
        let Some(&function) = pdu.first() else {
            cov_edge!(ctx);
            return crate::sink::protocol_error("empty PDU");
        };
        let body = &pdu[1..];
        match function {
            function::READ_COILS | function::READ_DISCRETE_INPUTS => {
                cov_edge!(ctx);
                let (Some(start), Some(quantity)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                if quantity == 0 || quantity > 2000 {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                }
                let end = usize::from(start) + usize::from(quantity);
                if end > self.db.coil_count() {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                cov_edge!(ctx);
                // Data-dependent dispatch: different coil zones are backed by
                // different callback blocks in the original server.
                cov_edge!(ctx, start / 8);
                cov_edge!(ctx, quantity / 8);
                let byte_count = usize::from(quantity).div_ceil(8);
                let mut data = vec![0u8; byte_count];
                for offset in 0..usize::from(quantity) {
                    if self.db.coil(usize::from(start) + offset) == Some(true) {
                        cov_edge!(ctx);
                        data[offset / 8] |= 1 << (offset % 8);
                    }
                }
                let mut reply = vec![function, byte_count as u8];
                reply.extend_from_slice(&data);
                Self::reply(transaction, unit, &reply)
            }
            function::READ_HOLDING_REGISTERS | function::READ_INPUT_REGISTERS => {
                cov_edge!(ctx);
                let (Some(start), Some(quantity)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                if quantity == 0 || quantity > 125 {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                }
                let end = usize::from(start) + usize::from(quantity);
                if end > self.db.register_count() {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                cov_edge!(ctx);
                cov_edge!(ctx, start / 8);
                cov_edge!(ctx, quantity);
                let mut reply = vec![function, (quantity * 2) as u8];
                for offset in 0..usize::from(quantity) {
                    let value = self.db.register(usize::from(start) + offset).unwrap_or(0);
                    reply.extend_from_slice(&value.to_be_bytes());
                }
                Self::reply(transaction, unit, &reply)
            }
            function::WRITE_SINGLE_COIL => {
                cov_edge!(ctx);
                let (Some(address), Some(value)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                if value != 0x0000 && value != 0xFF00 {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                }
                if !self.db.set_coil(usize::from(address), value == 0xFF00) {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                cov_edge!(ctx);
                Self::reply(transaction, unit, pdu)
            }
            function::WRITE_SINGLE_REGISTER => {
                cov_edge!(ctx);
                let (Some(address), Some(value)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                if !self.db.set_register(usize::from(address), value) {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                cov_edge!(ctx);
                cov_edge!(ctx, address / 8);
                cov_edge!(ctx, value >> 12);
                Self::reply(transaction, unit, pdu)
            }
            function::DIAGNOSTICS => {
                cov_edge!(ctx);
                let (Some(sub_function), Some(data)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                match sub_function {
                    // Return query data (loopback).
                    0x0000 => {
                        cov_edge!(ctx);
                        Self::reply(transaction, unit, pdu)
                    }
                    // Restart communications option: in the original C server
                    // this tears down and re-allocates the register mapping.
                    // The planted bug models forgetting to re-allocate.
                    0x0001 => {
                        cov_edge!(ctx);
                        if data == 0xFF00 {
                            cov_edge!(ctx);
                            self.mapping_freed = true;
                        }
                        Self::reply(transaction, unit, pdu)
                    }
                    // Force listen-only mode.
                    0x0004 => {
                        cov_edge!(ctx);
                        Self::reply(transaction, unit, &[function, 0x00, 0x04, 0x00, 0x00])
                    }
                    _ => {
                        cov_edge!(ctx);
                        Self::exception(transaction, unit, function, exception::ILLEGAL_FUNCTION)
                    }
                }
            }
            function::WRITE_MULTIPLE_COILS => {
                cov_edge!(ctx);
                let (Some(start), Some(quantity)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let Some(&byte_count) = body.get(4) else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let values = &body[5..];
                if quantity == 0
                    || quantity > 0x07B0
                    || usize::from(byte_count) != usize::from(quantity).div_ceil(8)
                    || values.len() < usize::from(byte_count)
                {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                }
                if usize::from(start) + usize::from(quantity) > self.db.coil_count() {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                cov_edge!(ctx);
                for offset in 0..usize::from(quantity) {
                    let bit = values[offset / 8] & (1 << (offset % 8)) != 0;
                    self.db.set_coil(usize::from(start) + offset, bit);
                }
                Self::reply(transaction, unit, &pdu[..5])
            }
            function::WRITE_MULTIPLE_REGISTERS => {
                cov_edge!(ctx);
                let (Some(start), Some(quantity)) = (read_u16_be(body, 0), read_u16_be(body, 2))
                else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let Some(&byte_count) = body.get(4) else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let values = &body[5..];
                if quantity == 0
                    || quantity > 123
                    || usize::from(byte_count) != usize::from(quantity) * 2
                    || values.len() < usize::from(byte_count)
                {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                }
                if usize::from(start) + usize::from(quantity) > self.db.register_count() {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                // Planted bug 1 (Table I, libmodbus, heap use-after-free):
                // the mapping was freed by a prior "restart communications"
                // diagnostic and is reused here without re-allocation.
                if self.mapping_freed {
                    cov_edge!(ctx);
                    return Outcome::Fault(Fault::new(
                        FaultKind::HeapUseAfterFree,
                        "modbus_reply.c:write_multiple_registers",
                    ));
                }
                cov_edge!(ctx);
                cov_edge!(ctx, start / 8);
                cov_edge!(ctx, quantity);
                for offset in 0..usize::from(quantity) {
                    let value = read_u16_be(values, offset * 2).unwrap_or(0);
                    self.db.set_register(usize::from(start) + offset, value);
                }
                Self::reply(transaction, unit, &pdu[..5])
            }
            function::MASK_WRITE_REGISTER => {
                cov_edge!(ctx);
                let (Some(address), Some(and_mask), Some(or_mask)) = (
                    read_u16_be(body, 0),
                    read_u16_be(body, 2),
                    read_u16_be(body, 4),
                ) else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let Some(current) = self.db.register(usize::from(address)) else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                };
                cov_edge!(ctx);
                cov_edge!(ctx, address / 8);
                cov_edge!(ctx, and_mask >> 12);
                let new_value = (current & and_mask) | (or_mask & !and_mask);
                self.db.set_register(usize::from(address), new_value);
                Self::reply(transaction, unit, pdu)
            }
            function::READ_WRITE_MULTIPLE_REGISTERS => {
                cov_edge!(ctx);
                let (Some(read_start), Some(read_quantity), Some(write_start), Some(write_quantity)) = (
                    read_u16_be(body, 0),
                    read_u16_be(body, 2),
                    read_u16_be(body, 4),
                    read_u16_be(body, 6),
                ) else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let Some(&write_byte_count) = body.get(8) else {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                };
                let write_values = &body[9..];
                if read_quantity == 0
                    || read_quantity > 125
                    || write_quantity == 0
                    || write_quantity > 121
                    || usize::from(write_byte_count) != usize::from(write_quantity) * 2
                    || write_values.len() < usize::from(write_byte_count)
                {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_VALUE,
                    );
                }
                // Planted bug 2 (Table I, libmodbus, SEGV): the original code
                // validates the read range and the write range separately but
                // indexes the mapping with `write_start + read_quantity` when
                // building the combined response, so a write range that ends
                // inside the map combined with a large read start walks off
                // the end of the allocation.
                if usize::from(write_start) + usize::from(write_quantity)
                    <= self.db.register_count()
                    && usize::from(read_start) >= self.db.register_count()
                {
                    cov_edge!(ctx);
                    return Outcome::Fault(Fault::new(
                        FaultKind::Segv,
                        "modbus_reply.c:read_write_multiple_registers",
                    ));
                }
                if usize::from(read_start) + usize::from(read_quantity) > self.db.register_count()
                    || usize::from(write_start) + usize::from(write_quantity)
                        > self.db.register_count()
                {
                    cov_edge!(ctx);
                    return Self::exception(
                        transaction,
                        unit,
                        function,
                        exception::ILLEGAL_DATA_ADDRESS,
                    );
                }
                cov_edge!(ctx);
                cov_edge!(ctx, read_start / 8);
                cov_edge!(ctx, write_start / 8);
                cov_edge!(ctx, read_quantity);
                for offset in 0..usize::from(write_quantity) {
                    let value = read_u16_be(write_values, offset * 2).unwrap_or(0);
                    self.db.set_register(usize::from(write_start) + offset, value);
                }
                let mut reply = vec![function, (read_quantity * 2) as u8];
                for offset in 0..usize::from(read_quantity) {
                    let value = self.db.register(usize::from(read_start) + offset).unwrap_or(0);
                    reply.extend_from_slice(&value.to_be_bytes());
                }
                Self::reply(transaction, unit, &reply)
            }
            _ => {
                cov_edge!(ctx);
                Self::exception(transaction, unit, function, exception::ILLEGAL_FUNCTION)
            }
        }
    }
}

impl Default for ModbusServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Target for ModbusServer {
    fn name(&self) -> &'static str {
        "libmodbus"
    }

    fn data_models(&self) -> DataModelSet {
        data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        self.requests_served += 1;
        // MBAP header: transaction(2) protocol(2) length(2) unit(1).
        if packet.len() < 8 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("packet shorter than MBAP header + function");
        }
        let transaction = read_u16_be(packet, 0).expect("length checked");
        let protocol = read_u16_be(packet, 2).expect("length checked");
        let length = read_u16_be(packet, 4).expect("length checked");
        let unit = packet[6];
        if protocol != 0 {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!("unsupported protocol id {protocol}"));
        }
        if usize::from(length) != packet.len() - 6 {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!(
                "MBAP length {} does not match packet length {}",
                length,
                packet.len() - 6
            ));
        }
        if unit != 0 && unit != 1 {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!("request for other unit {unit}"));
        }
        cov_edge!(ctx);
        let pdu = &packet[7..];
        self.handle_pdu(transaction, unit, pdu, ctx)
    }

    fn reset(&mut self) {
        *self = Self::new();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self::new())
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut crate::WindowResults,
        sink: crate::DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        // Window-hoisted framing prescan: MBAP validation is a pure function
        // of the packet bytes, so the whole window's verdicts come from the
        // vectorised [`crate::prescan`] kernels in one tight pass over the
        // headers before the stateful dispatch loop runs. The per-packet
        // decode below stays authoritative and re-records the same checks
        // edge-for-edge — skipping them based on the prescan would change
        // the recorded traces and break the batched/sequential bit-identity
        // contract — so the prescan is cross-checked in debug builds, using
        // the verdict buffer pooled in `out` (no per-window allocation).
        #[cfg(debug_assertions)]
        let mut scratch = out.take_prescan();
        #[cfg(debug_assertions)]
        let well_framed = scratch.run(crate::FrameSpec::Mbap, packets);
        for (index, packet) in packets.iter().enumerate() {
            ctx.reset();
            // `self` is the concrete server here, so this loop is statically
            // dispatched: one virtual call per window instead of per packet.
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            #[cfg(debug_assertions)]
            debug_assert!(
                well_framed[index] || matches!(outcome, Outcome::ProtocolError(_)),
                "prescan rejected packet {index}, but the decoder accepted it"
            );
            let _ = index;
            out.record(&outcome, ctx.trace());
        }
        #[cfg(debug_assertions)]
        out.return_prescan(scratch);
    }
}

/// Whether `packet` passes the pure MBAP framing checks of
/// [`ModbusServer::process`](Target::process): full header, protocol id 0,
/// matching MBAP length and a served unit id. Depends only on the packet
/// bytes (never on session state), which is what lets
/// [`Target::process_batch`] prevalidate a whole window in one pass; the
/// decoder's own checks remain authoritative. Delegates to the shared
/// (vectorisable) [`crate::FrameSpec::Mbap`] predicate.
#[must_use]
pub fn mbap_well_framed(packet: &[u8]) -> bool {
    crate::FrameSpec::Mbap.check(packet)
}

/// The format specification (Peach-pit equivalent) of the Modbus/TCP
/// requests the fuzzer generates: one data model per function code, sharing
/// construction rules for the MBAP header, register addresses and
/// quantities.
#[must_use]
pub fn data_models() -> DataModelSet {
    let mut set = DataModelSet::new("modbus");

    // The MBAP header is identical across packet types; the shared rule names
    // make the header chunks donor-compatible between models.
    let mbap = |body: &str| -> Vec<(String, NumberSpec, &'static str)> {
        vec![
            (
                "transaction".into(),
                NumberSpec::u16_be().default_value(1),
                "mbap-transaction",
            ),
            (
                "protocol".into(),
                NumberSpec::u16_be().fixed_value(0),
                "mbap-protocol",
            ),
            (
                "length".into(),
                NumberSpec::u16_be().relation(Relation::SizeOf {
                    of: body.into(),
                    adjust: 1,
                    scale: 1,
                }),
                "mbap-length",
            ),
            (
                "unit".into(),
                NumberSpec::u8().default_value(1),
                "mbap-unit",
            ),
        ]
    };

    let with_mbap = |name: &str, body_name: &str, body: BlockBuilder| {
        let mut builder = DataModelBuilder::new(name);
        for (field, spec, rule) in mbap(body_name) {
            builder = builder.number_with_rule(field, spec, rule);
        }
        builder
            .block(body)
            .build()
            .expect("modbus data model is statically valid")
    };

    set.push(with_mbap(
        "read_holding_registers",
        "pdu_read",
        BlockBuilder::new("pdu_read")
            .number("fc_read", NumberSpec::u8().fixed_value(0x03))
            .number_with_rule("start_read", NumberSpec::u16_be(), "register-address")
            .number_with_rule(
                "quantity_read",
                NumberSpec::u16_be().default_value(2),
                "register-quantity",
            ),
    ));

    set.push(with_mbap(
        "read_coils",
        "pdu_coils",
        BlockBuilder::new("pdu_coils")
            .number("fc_coils", NumberSpec::u8().fixed_value(0x01))
            .number_with_rule("start_coils", NumberSpec::u16_be(), "register-address")
            .number_with_rule(
                "quantity_coils",
                NumberSpec::u16_be().default_value(8),
                "register-quantity",
            ),
    ));

    set.push(with_mbap(
        "write_single_register",
        "pdu_wsr",
        BlockBuilder::new("pdu_wsr")
            .number("fc_wsr", NumberSpec::u8().fixed_value(0x06))
            .number_with_rule("address_wsr", NumberSpec::u16_be(), "register-address")
            .number_with_rule("value_wsr", NumberSpec::u16_be(), "register-value"),
    ));

    set.push(with_mbap(
        "write_single_coil",
        "pdu_wsc",
        BlockBuilder::new("pdu_wsc")
            .number("fc_wsc", NumberSpec::u8().fixed_value(0x05))
            .number_with_rule("address_wsc", NumberSpec::u16_be(), "register-address")
            .number(
                "value_wsc",
                NumberSpec::u16_be().allowed_values(vec![0xFF00, 0x0000]),
            ),
    ));

    set.push(with_mbap(
        "diagnostics",
        "pdu_diag",
        BlockBuilder::new("pdu_diag")
            .number("fc_diag", NumberSpec::u8().fixed_value(0x08))
            .number(
                "sub_function",
                NumberSpec::u16_be().allowed_values(vec![0x0000, 0x0001, 0x0004]),
            )
            .number_with_rule(
                "diag_data",
                NumberSpec::u16_be().default_value(0xFF00),
                "register-value",
            ),
    ));

    set.push(with_mbap(
        "write_multiple_registers",
        "pdu_wmr",
        BlockBuilder::new("pdu_wmr")
            .number("fc_wmr", NumberSpec::u8().fixed_value(0x10))
            .number_with_rule("start_wmr", NumberSpec::u16_be(), "register-address")
            .number(
                "quantity_wmr",
                NumberSpec::u16_be().relation(Relation::CountOf {
                    of: "values_wmr".into(),
                    element_size: 2,
                }),
            )
            .number(
                "byte_count_wmr",
                NumberSpec::u8().relation(Relation::size_of("values_wmr")),
            )
            .bytes_with_rule(
                "values_wmr",
                peachstar_datamodel::BytesSpec::remainder()
                    .default_content(vec![0x00, 0x2a, 0x00, 0x2b]),
                "register-values",
            ),
    ));

    set.push(with_mbap(
        "mask_write_register",
        "pdu_mask",
        BlockBuilder::new("pdu_mask")
            .number("fc_mask", NumberSpec::u8().fixed_value(0x16))
            .number_with_rule("address_mask", NumberSpec::u16_be(), "register-address")
            .number_with_rule("and_mask", NumberSpec::u16_be().default_value(0xF0F0), "register-value")
            .number_with_rule("or_mask", NumberSpec::u16_be().default_value(0x0F0F), "register-value"),
    ));

    set.push(with_mbap(
        "read_write_multiple_registers",
        "pdu_rw",
        BlockBuilder::new("pdu_rw")
            .number("fc_rw", NumberSpec::u8().fixed_value(0x17))
            .number_with_rule("read_start", NumberSpec::u16_be(), "register-address")
            .number_with_rule(
                "read_quantity",
                NumberSpec::u16_be().default_value(2),
                "register-quantity",
            )
            .number_with_rule("write_start", NumberSpec::u16_be(), "register-address")
            .number(
                "write_quantity",
                NumberSpec::u16_be().relation(Relation::CountOf {
                    of: "write_values".into(),
                    element_size: 2,
                }),
            )
            .number(
                "write_byte_count",
                NumberSpec::u8().relation(Relation::size_of("write_values")),
            )
            .bytes_with_rule(
                "write_values",
                peachstar_datamodel::BytesSpec::remainder()
                    .default_content(vec![0x12, 0x34, 0x56, 0x78]),
                "register-values",
            ),
    ));

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;

    fn run(server: &mut ModbusServer, packet: &[u8]) -> Outcome {
        let mut ctx = TraceContext::new();
        server.process(packet, &mut ctx)
    }

    fn mbap(pdu: &[u8]) -> Vec<u8> {
        let mut packet = vec![0x00, 0x01, 0x00, 0x00];
        packet.extend_from_slice(&((pdu.len() + 1) as u16).to_be_bytes());
        packet.push(0x01);
        packet.extend_from_slice(pdu);
        packet
    }

    #[test]
    fn read_holding_registers_returns_values() {
        let mut server = ModbusServer::new();
        let outcome = run(&mut server, &mbap(&[0x03, 0x00, 0x01, 0x00, 0x02]));
        let response = outcome.response().expect("valid request gets a response");
        assert_eq!(response[7], 0x03);
        assert_eq!(response[8], 4, "two registers -> four bytes");
        assert_eq!(&response[9..11], &3u16.to_be_bytes());
    }

    #[test]
    fn read_beyond_mapping_is_an_exception_not_a_fault() {
        let mut server = ModbusServer::new();
        let outcome = run(&mut server, &mbap(&[0x03, 0xFF, 0x00, 0x00, 0x10]));
        let response = outcome.response().expect("exception response");
        assert_eq!(response[7], 0x83);
        assert_eq!(response[8], exception::ILLEGAL_DATA_ADDRESS);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut server = ModbusServer::new();
        run(&mut server, &mbap(&[0x06, 0x00, 0x05, 0xAB, 0xCD]));
        let outcome = run(&mut server, &mbap(&[0x03, 0x00, 0x05, 0x00, 0x01]));
        let response = outcome.response().unwrap();
        assert_eq!(&response[9..11], &[0xAB, 0xCD]);
    }

    #[test]
    fn coil_functions_roundtrip() {
        let mut server = ModbusServer::new();
        // Force coil 3 on.
        let outcome = run(&mut server, &mbap(&[0x05, 0x00, 0x03, 0xFF, 0x00]));
        assert!(outcome.response().is_some());
        // Read coils 0..8 and check bit 3.
        let outcome = run(&mut server, &mbap(&[0x01, 0x00, 0x00, 0x00, 0x08]));
        let response = outcome.response().unwrap();
        assert_eq!(response[8], 1, "one data byte");
        assert_ne!(response[9] & 0b0000_1000, 0);
    }

    #[test]
    fn invalid_coil_value_is_rejected() {
        let mut server = ModbusServer::new();
        let outcome = run(&mut server, &mbap(&[0x05, 0x00, 0x03, 0x12, 0x34]));
        let response = outcome.response().unwrap();
        assert_eq!(response[7], 0x85);
        assert_eq!(response[8], exception::ILLEGAL_DATA_VALUE);
    }

    #[test]
    fn malformed_mbap_is_a_protocol_error() {
        let mut server = ModbusServer::new();
        assert!(matches!(run(&mut server, &[0x00; 4]), Outcome::ProtocolError(_)));
        // Wrong protocol identifier.
        let mut packet = mbap(&[0x03, 0x00, 0x00, 0x00, 0x01]);
        packet[2] = 0xFF;
        assert!(matches!(run(&mut server, &packet), Outcome::ProtocolError(_)));
        // Wrong MBAP length.
        let mut packet = mbap(&[0x03, 0x00, 0x00, 0x00, 0x01]);
        packet[5] = 0x01;
        assert!(matches!(run(&mut server, &packet), Outcome::ProtocolError(_)));
    }

    #[test]
    fn unknown_function_code_is_illegal_function() {
        let mut server = ModbusServer::new();
        let outcome = run(&mut server, &mbap(&[0x41, 0x00, 0x00]));
        let response = outcome.response().unwrap();
        assert_eq!(response[7], 0xC1);
        assert_eq!(response[8], exception::ILLEGAL_FUNCTION);
    }

    #[test]
    fn write_multiple_registers_happy_path() {
        let mut server = ModbusServer::new();
        let outcome = run(
            &mut server,
            &mbap(&[0x10, 0x00, 0x02, 0x00, 0x02, 0x04, 0x11, 0x22, 0x33, 0x44]),
        );
        assert!(outcome.response().is_some());
        let outcome = run(&mut server, &mbap(&[0x03, 0x00, 0x02, 0x00, 0x02]));
        let response = outcome.response().unwrap();
        assert_eq!(&response[9..13], &[0x11, 0x22, 0x33, 0x44]);
    }

    #[test]
    fn planted_use_after_free_needs_restart_then_write() {
        let mut server = ModbusServer::new();
        // Without the restart, the deep write succeeds.
        let write = mbap(&[0x10, 0x00, 0x00, 0x00, 0x01, 0x02, 0xAA, 0xBB]);
        assert!(!run(&mut server, &write).is_fault());
        // Restart communications (sub-function 0x0001, data 0xFF00) frees the mapping…
        let restart = mbap(&[0x08, 0x00, 0x01, 0xFF, 0x00]);
        assert!(!run(&mut server, &restart).is_fault());
        // …and the next deep write reuses it.
        let outcome = run(&mut server, &write);
        let fault = outcome.fault().expect("use-after-free fault");
        assert_eq!(fault.kind, FaultKind::HeapUseAfterFree);
    }

    #[test]
    fn planted_segv_in_read_write_multiple() {
        let mut server = ModbusServer::new();
        // Valid write range, read start beyond the mapping.
        let pdu = [
            0x17, // function
            0xFF, 0x00, // read start far out of range
            0x00, 0x02, // read quantity
            0x00, 0x00, // write start
            0x00, 0x01, // write quantity
            0x02, 0xDE, 0xAD, // byte count + values
        ];
        let outcome = run(&mut server, &mbap(&pdu));
        let fault = outcome.fault().expect("segv fault");
        assert_eq!(fault.kind, FaultKind::Segv);
    }

    #[test]
    fn reset_clears_freed_mapping_state() {
        let mut server = ModbusServer::new();
        run(&mut server, &mbap(&[0x08, 0x00, 0x01, 0xFF, 0x00]));
        server.reset();
        let write = mbap(&[0x10, 0x00, 0x00, 0x00, 0x01, 0x02, 0xAA, 0xBB]);
        assert!(!run(&mut server, &write).is_fault());
    }

    #[test]
    fn default_model_packets_are_accepted() {
        let mut server = ModbusServer::new();
        for model in data_models().models() {
            let packet = emit_default(model).unwrap();
            let outcome = run(&mut server, &packet);
            assert!(
                outcome.response().is_some(),
                "{}: default packet should be processed, got {outcome:?}",
                model.name()
            );
        }
    }

    #[test]
    fn data_models_share_rules_across_packet_types() {
        let set = data_models();
        assert!(set.len() >= 8);
        assert!(
            set.rule_overlap() > 0.3,
            "modbus packet types share MBAP and address rules: {}",
            set.rule_overlap()
        );
    }

    #[test]
    fn mask_write_applies_masks() {
        let mut server = ModbusServer::new();
        run(&mut server, &mbap(&[0x06, 0x00, 0x04, 0x12, 0x34]));
        run(&mut server, &mbap(&[0x16, 0x00, 0x04, 0xF2, 0x25, 0x00, 0x02]));
        let outcome = run(&mut server, &mbap(&[0x03, 0x00, 0x04, 0x00, 0x01]));
        let response = outcome.response().unwrap();
        let value = u16::from_be_bytes([response[9], response[10]]);
        assert_eq!(value, (0x1234 & 0xF225) | (0x0002 & !0xF225));
    }

    #[test]
    fn mbap_prescan_agrees_with_the_decoder_on_framing() {
        // Well-framed read request.
        assert!(mbap_well_framed(&[0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02]));
        assert!(!mbap_well_framed(&[])); // too short
        assert!(!mbap_well_framed(&[0x00; 7])); // header truncated
        // Bad protocol id.
        assert!(!mbap_well_framed(&[0x00, 0x01, 0x00, 0x09, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02]));
        // MBAP length mismatch.
        assert!(!mbap_well_framed(&[0x00, 0x01, 0x00, 0x00, 0x00, 0x07, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02]));
        // Unit id nobody serves.
        assert!(!mbap_well_framed(&[0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x09, 0x03, 0x00, 0x00, 0x00, 0x02]));
        // Prescan-rejected frames must be decoder-rejected too.
        let mut server = ModbusServer::new();
        let mut ctx = TraceContext::new();
        for frame in [&[0x00u8; 7][..], &[0x00, 0x01, 0x00, 0x09, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02]] {
            assert!(matches!(server.process(frame, &mut ctx), Outcome::ProtocolError(_)));
        }
    }
}
