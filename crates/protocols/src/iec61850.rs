//! The IEC 61850 MMS server target (stand-in for libiec61850).
//!
//! Models the deepest protocol stack of the six targets: TPKT framing,
//! a minimal COTP data TPDU, then an MMS layer encoded with simplified
//! BER-style TLV records. Supported MMS services: initiate, conclude,
//! identify, getNameList, read, write and getVariableAccessAttributes.
//! The nested TLV walk gives this target by far the largest number of
//! instrumented branches, which is why the paper reports thousands of paths
//! for libiec61850 versus dozens for IEC104. No Table I faults are planted
//! here.

use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::{
    BlockBuilder, BytesSpec, DataModelBuilder, DataModelSet, NumberSpec, Relation, StrSpec,
};

use crate::common::PointDatabase;
use crate::{Outcome, SessionPacket, SessionTemplate, Target};

/// MMS PDU tags (simplified confirmed-request choice values).
mod service {
    pub const INITIATE: u8 = 0xA8;
    pub const CONCLUDE: u8 = 0x8B;
    pub const CONFIRMED_REQUEST: u8 = 0xA0;
}

/// Confirmed-service tags inside a confirmed request.
mod confirmed {
    pub const GET_NAME_LIST: u8 = 0x01;
    pub const IDENTIFY: u8 = 0x02;
    pub const READ: u8 = 0x04;
    pub const WRITE: u8 = 0x05;
    pub const GET_VARIABLE_ATTRIBUTES: u8 = 0x06;
}

/// A parsed TLV record.
#[derive(Debug, Clone, Copy)]
struct Tlv<'packet> {
    tag: u8,
    value: &'packet [u8],
}

/// Reads one TLV at `offset`; returns the record and the offset past it.
fn read_tlv(data: &[u8], offset: usize) -> Option<(Tlv<'_>, usize)> {
    let tag = *data.get(offset)?;
    let first_len = *data.get(offset + 1)?;
    let (length, header) = if first_len & 0x80 == 0 {
        (usize::from(first_len), 2)
    } else {
        let count = usize::from(first_len & 0x7f);
        if count == 0 || count > 2 {
            return None;
        }
        let mut length = 0usize;
        for i in 0..count {
            length = (length << 8) | usize::from(*data.get(offset + 2 + i)?);
        }
        (length, 2 + count)
    };
    let start = offset + header;
    let value = data.get(start..start + length)?;
    Some((Tlv { tag, value }, start + length))
}

/// Encodes one TLV (short-form length only; callers keep values < 128 bytes).
fn write_tlv(tag: u8, value: &[u8]) -> Vec<u8> {
    crate::sink::bytes_with(2 + value.len(), |out| {
        out.push(tag);
        out.push(value.len() as u8);
        out.extend_from_slice(value);
    })
}

/// Association state of the MMS server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Association {
    /// No MMS association established.
    Closed,
    /// Initiate accepted; confirmed services allowed.
    Open,
}

/// The MMS / IEC 61850 server.
#[derive(Debug)]
pub struct MmsServer {
    db: PointDatabase,
    association: Association,
    invoke_counter: u32,
}

impl MmsServer {
    /// Creates a server with a small default IED data model.
    #[must_use]
    pub fn new() -> Self {
        let mut db = PointDatabase::default();
        db.set_named_point("simpleIOGenericIO/GGIO1.AnIn1", 1.25);
        db.set_named_point("simpleIOGenericIO/GGIO1.AnIn2", 2.5);
        db.set_named_point("simpleIOGenericIO/GGIO1.SPCSO1", 0.0);
        db.set_named_point("simpleIOGenericIO/LLN0.Mod", 1.0);
        Self {
            db,
            association: Association::Closed,
            invoke_counter: 0,
        }
    }

    /// Number of confirmed requests served.
    #[must_use]
    pub fn invoke_counter(&self) -> u32 {
        self.invoke_counter
    }

    fn tpkt(payload: &[u8]) -> Vec<u8> {
        crate::sink::bytes_with(7 + payload.len(), |out| {
            out.extend_from_slice(&[0x03, 0x00]);
            out.extend_from_slice(&((payload.len() + 4 + 3) as u16).to_be_bytes());
            out.extend_from_slice(&[0x02, 0xf0, 0x80]); // COTP DT header (length, code, EOT)
            out.extend_from_slice(payload);
        })
    }

    fn handle_confirmed(
        &mut self,
        body: &[u8],
        ctx: &mut TraceContext,
    ) -> Outcome {
        cov_edge!(ctx);
        // Confirmed request: invokeId TLV (0x02) then service TLV.
        let Some((invoke, next)) = read_tlv(body, 0) else {
            cov_edge!(ctx);
            return crate::sink::protocol_error("confirmed request without invoke id");
        };
        if invoke.tag != 0x02 || invoke.value.is_empty() || invoke.value.len() > 4 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("malformed invoke id");
        }
        cov_edge!(ctx, invoke.value.len());
        let Some((request, _)) = read_tlv(body, next) else {
            cov_edge!(ctx);
            return crate::sink::protocol_error("confirmed request without service");
        };
        self.invoke_counter += 1;
        match request.tag & 0x1f {
            confirmed::IDENTIFY => {
                cov_edge!(ctx);
                let vendor = write_tlv(0x80, b"peachstar");
                let model = write_tlv(0x81, b"mms-sim");
                let revision = write_tlv(0x82, b"1.0");
                let mut response = vendor;
                response.extend(model);
                response.extend(revision);
                Outcome::Response(Self::tpkt(&write_tlv(0xA1, &response)))
            }
            confirmed::GET_NAME_LIST => {
                cov_edge!(ctx);
                // Object class TLV inside the request selects LD vs LN lists.
                let Some((class, _)) = read_tlv(request.value, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("getNameList without object class");
                };
                cov_edge!(ctx);
                let names: Vec<&str> = if class.value.first() == Some(&0x09) {
                    vec!["simpleIOGenericIO"]
                } else {
                    vec!["GGIO1", "LLN0", "LPHD1"]
                };
                let mut list = Vec::new();
                for name in names {
                    cov_edge!(ctx);
                    list.extend(write_tlv(0x1a, name.as_bytes()));
                }
                Outcome::Response(Self::tpkt(&write_tlv(0xA1, &list)))
            }
            confirmed::READ => {
                cov_edge!(ctx);
                // Variable specification: domain name + item name strings.
                let Some((var_spec, _)) = read_tlv(request.value, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("read without variable specification");
                };
                let Some((domain, after_domain)) = read_tlv(var_spec.value, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("read without domain name");
                };
                let Some((item, _)) = read_tlv(var_spec.value, after_domain) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("read without item name");
                };
                let domain = String::from_utf8_lossy(domain.value);
                let item = String::from_utf8_lossy(item.value).replace('$', ".");
                let reference = format!("{domain}/{item}");
                cov_edge!(ctx);
                match self.db.named_point(&reference) {
                    Some(value) => {
                        cov_edge!(ctx);
                        // Per-object access handlers of the original stack.
                        cov_edge!(ctx, reference.len());
                        cov_edge!(ctx, reference.bytes().map(u32::from).sum::<u32>());
                        let encoded = write_tlv(0x87, &(value as f32).to_be_bytes());
                        Outcome::Response(Self::tpkt(&write_tlv(0xA1, &encoded)))
                    }
                    None => {
                        cov_edge!(ctx);
                        // DataAccessError: object-non-existent.
                        Outcome::Response(Self::tpkt(&write_tlv(0x80, &[0x0a])))
                    }
                }
            }
            confirmed::WRITE => {
                cov_edge!(ctx);
                let Some((var_spec, after_spec)) = read_tlv(request.value, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("write without variable specification");
                };
                let Some((domain, after_domain)) = read_tlv(var_spec.value, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("write without domain name");
                };
                let Some((item, _)) = read_tlv(var_spec.value, after_domain) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("write without item name");
                };
                let Some((data, _)) = read_tlv(request.value, after_spec) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("write without data");
                };
                let domain = String::from_utf8_lossy(domain.value);
                let item = String::from_utf8_lossy(item.value).replace('$', ".");
                let reference = format!("{domain}/{item}");
                cov_edge!(ctx);
                let value = match data.value.len() {
                    4 => f64::from(f32::from_be_bytes([
                        data.value[0],
                        data.value[1],
                        data.value[2],
                        data.value[3],
                    ])),
                    1 => f64::from(data.value[0]),
                    _ => {
                        cov_edge!(ctx);
                        return Outcome::Response(Self::tpkt(&write_tlv(0x80, &[0x07])));
                    }
                };
                if self.db.named_point(&reference).is_some() {
                    cov_edge!(ctx);
                    cov_edge!(ctx, reference.bytes().map(u32::from).sum::<u32>());
                    cov_edge!(ctx, data.value.len());
                    self.db.set_named_point(reference, value);
                    Outcome::Response(Self::tpkt(&write_tlv(0xA1, &write_tlv(0x81, &[]))))
                } else {
                    cov_edge!(ctx);
                    Outcome::Response(Self::tpkt(&write_tlv(0x80, &[0x0a])))
                }
            }
            confirmed::GET_VARIABLE_ATTRIBUTES => {
                cov_edge!(ctx);
                let type_description = write_tlv(0xA2, &write_tlv(0x91, &[0x04]));
                Outcome::Response(Self::tpkt(&write_tlv(0xA1, &type_description)))
            }
            other => {
                cov_edge!(ctx);
                crate::sink::protocol_error_fmt(format_args!("unsupported confirmed service {other:#04x}"))
            }
        }
    }
}

impl Default for MmsServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Target for MmsServer {
    fn name(&self) -> &'static str {
        "libiec61850"
    }

    fn data_models(&self) -> DataModelSet {
        data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        // TPKT: version 3, reserved 0, 16-bit length.
        if packet.len() < 7 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("frame shorter than TPKT + COTP");
        }
        if packet[0] != 0x03 || packet[1] != 0x00 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("bad TPKT version");
        }
        let tpkt_length = usize::from(u16::from_be_bytes([packet[2], packet[3]]));
        if tpkt_length != packet.len() {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!(
                "TPKT length {tpkt_length} does not match frame length {}",
                packet.len()
            ));
        }
        // COTP data TPDU: length indicator, code 0xF0, EOT flag.
        let cotp_length = usize::from(packet[4]);
        if cotp_length < 2 || 5 + cotp_length > packet.len() {
            cov_edge!(ctx);
            return crate::sink::protocol_error("bad COTP length indicator");
        }
        if packet[5] != 0xf0 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("not a COTP data TPDU");
        }
        cov_edge!(ctx);
        let mms = &packet[4 + 1 + cotp_length..];
        let Some((pdu, _)) = read_tlv(mms, 0) else {
            cov_edge!(ctx);
            return crate::sink::protocol_error("empty MMS payload");
        };
        match pdu.tag {
            service::INITIATE => {
                cov_edge!(ctx);
                self.association = Association::Open;
                // initiate-ResponsePDU with our negotiated parameters.
                let detail = write_tlv(0x80, &[0x00, 0x01]);
                Outcome::Response(Self::tpkt(&write_tlv(0xA9, &detail)))
            }
            service::CONCLUDE => {
                cov_edge!(ctx);
                self.association = Association::Closed;
                Outcome::Response(Self::tpkt(&write_tlv(0x8C, &[])))
            }
            service::CONFIRMED_REQUEST => {
                cov_edge!(ctx);
                if self.association != Association::Open {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("confirmed request before initiate");
                }
                self.handle_confirmed(pdu.value, ctx)
            }
            other => {
                cov_edge!(ctx);
                crate::sink::protocol_error_fmt(format_args!("unknown MMS PDU tag {other:#04x}"))
            }
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }

    fn session_template(&self) -> Option<SessionTemplate> {
        // MMS confirmed services are only served inside an association, so
        // a session is initiate-Request → mutated requests → conclude-Request
        // (TPKT + COTP data TPDU framing, as `process` expects).
        Some(SessionTemplate::new(
            vec![SessionPacket::new(
                vec![
                    0x03, 0x00, 0x00, 0x0d, // TPKT: version 3, length 13
                    0x02, 0xf0, 0x80, // COTP data TPDU
                    0xa8, 0x04, 0x80, 0x02, 0x00, 0x01, // initiate-RequestPDU
                ],
                "initiate-Request",
            )],
            vec![SessionPacket::new(
                vec![
                    0x03, 0x00, 0x00, 0x09, // TPKT: version 3, length 9
                    0x02, 0xf0, 0x80, // COTP data TPDU
                    0x8b, 0x00, // conclude-RequestPDU
                ],
                "conclude-Request",
            )],
        ))
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self::new())
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut crate::WindowResults,
        sink: crate::DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        // Window-hoisted TPKT/COTP framing prescan (version, length field,
        // DT TPDU header), via the vectorised [`crate::prescan`] kernels with
        // the verdict buffer pooled in `out`. The decoder below stays
        // authoritative; debug builds assert the prescan is never stricter.
        #[cfg(debug_assertions)]
        let mut scratch = out.take_prescan();
        #[cfg(debug_assertions)]
        let well_framed = scratch.run(crate::FrameSpec::TpktCotp, packets);
        for (index, packet) in packets.iter().enumerate() {
            ctx.reset();
            // Statically dispatched: one virtual call per window.
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            #[cfg(debug_assertions)]
            debug_assert!(
                well_framed[index] || matches!(outcome, Outcome::ProtocolError(_)),
                "prescan rejected packet {index}, but the decoder accepted it"
            );
            let _ = index;
            out.record(&outcome, ctx.trace());
        }
        #[cfg(debug_assertions)]
        out.return_prescan(scratch);
    }
}

/// The format specification of the MMS packets the fuzzer generates.
#[must_use]
pub fn data_models() -> DataModelSet {
    let mut set = DataModelSet::new("iec61850");

    let tpkt_cotp = |name: &str, mms: BlockBuilder| {
        DataModelBuilder::new(name)
            .number_with_rule("tpkt_version", NumberSpec::u8().fixed_value(0x03), "tpkt-version")
            .number_with_rule("tpkt_reserved", NumberSpec::u8().fixed_value(0x00), "tpkt-reserved")
            .number_with_rule(
                "tpkt_length",
                NumberSpec::u16_be().relation(Relation::SizeOf {
                    of: "cotp".into(),
                    adjust: 4,
                    scale: 1,
                }),
                "tpkt-length",
            )
            .block(
                BlockBuilder::new("cotp")
                    .number("cotp_length", NumberSpec::u8().fixed_value(0x02))
                    .number("cotp_code", NumberSpec::u8().fixed_value(0xf0))
                    .number("cotp_eot", NumberSpec::u8().fixed_value(0x80))
                    .block(mms),
            )
            .build()
            .expect("mms model is statically valid")
    };

    set.push(tpkt_cotp(
        "initiate",
        BlockBuilder::new("mms_initiate")
            .number("initiate_tag", NumberSpec::u8().fixed_value(0xA8))
            .number(
                "initiate_length",
                NumberSpec::u8().relation(Relation::size_of("initiate_body")),
            )
            .bytes(
                "initiate_body",
                BytesSpec::remainder().default_content(vec![0x80, 0x02, 0x00, 0x01]),
            ),
    ));

    set.push(tpkt_cotp(
        "identify",
        BlockBuilder::new("mms_identify")
            .number("request_tag", NumberSpec::u8().fixed_value(0xA0))
            .number(
                "request_length",
                NumberSpec::u8().relation(Relation::size_of("identify_body")),
            )
            .block(
                BlockBuilder::new("identify_body")
                    .number_with_rule("invoke_tag", NumberSpec::u8().fixed_value(0x02), "mms-invoke-tag")
                    .number_with_rule("invoke_length", NumberSpec::u8().fixed_value(0x01), "mms-invoke-length")
                    .number_with_rule("invoke_id", NumberSpec::u8().default_value(1), "mms-invoke-id")
                    .number("identify_service", NumberSpec::u8().fixed_value(0x82))
                    .number("identify_service_length", NumberSpec::u8().fixed_value(0x00)),
            ),
    ));

    set.push(tpkt_cotp(
        "get_name_list",
        BlockBuilder::new("mms_gnl")
            .number("request_tag_gnl", NumberSpec::u8().fixed_value(0xA0))
            .number(
                "request_length_gnl",
                NumberSpec::u8().relation(Relation::size_of("gnl_body")),
            )
            .block(
                BlockBuilder::new("gnl_body")
                    .number_with_rule("invoke_tag_gnl", NumberSpec::u8().fixed_value(0x02), "mms-invoke-tag")
                    .number_with_rule("invoke_length_gnl", NumberSpec::u8().fixed_value(0x01), "mms-invoke-length")
                    .number_with_rule("invoke_id_gnl", NumberSpec::u8().default_value(2), "mms-invoke-id")
                    .number("gnl_service", NumberSpec::u8().fixed_value(0xA1))
                    .number(
                        "gnl_service_length",
                        NumberSpec::u8().relation(Relation::size_of("gnl_args")),
                    )
                    .block(
                        BlockBuilder::new("gnl_args")
                            .number("class_tag", NumberSpec::u8().fixed_value(0x80))
                            .number("class_length", NumberSpec::u8().fixed_value(0x01))
                            .number("class_value", NumberSpec::u8().allowed_values(vec![0x09, 0x00])),
                    ),
            ),
    ));

    let named_variable_request = |name: &str, service_tag: u64, with_value: bool| {
        let mut spec_block = BlockBuilder::new(format!("{name}_spec"))
            .number_with_rule(
                format!("{name}_domain_tag"),
                NumberSpec::u8().fixed_value(0x1a),
                "mms-string-tag",
            )
            .number(
                format!("{name}_domain_length"),
                NumberSpec::u8().relation(Relation::size_of(format!("{name}_domain"))),
            )
            .str(
                format!("{name}_domain"),
                StrSpec::fixed(17).default_content("simpleIOGenericIO"),
            )
            .number_with_rule(
                format!("{name}_item_tag"),
                NumberSpec::u8().fixed_value(0x1a),
                "mms-string-tag",
            )
            .number(
                format!("{name}_item_length"),
                NumberSpec::u8().relation(Relation::size_of(format!("{name}_item"))),
            )
            .str(
                format!("{name}_item"),
                StrSpec::fixed(11).default_content("GGIO1$AnIn1"),
            );
        spec_block = spec_block.rule("mms-variable-spec");

        let mut args = BlockBuilder::new(format!("{name}_args"))
            .number(
                format!("{name}_spec_tag"),
                NumberSpec::u8().fixed_value(0xA0),
            )
            .number(
                format!("{name}_spec_length"),
                NumberSpec::u8().relation(Relation::size_of(format!("{name}_spec"))),
            )
            .block(spec_block);
        if with_value {
            args = args
                .number(format!("{name}_data_tag"), NumberSpec::u8().fixed_value(0x87))
                .number(
                    format!("{name}_data_length"),
                    NumberSpec::u8().relation(Relation::size_of(format!("{name}_data"))),
                )
                .bytes(
                    format!("{name}_data"),
                    BytesSpec::fixed(4).default_content(vec![0x40, 0x20, 0x00, 0x00]),
                );
        }

        tpkt_cotp(
            name,
            BlockBuilder::new(format!("mms_{name}"))
                .number(format!("{name}_request_tag"), NumberSpec::u8().fixed_value(0xA0))
                .number(
                    format!("{name}_request_length"),
                    NumberSpec::u8().relation(Relation::size_of(format!("{name}_body"))),
                )
                .block(
                    BlockBuilder::new(format!("{name}_body"))
                        .number_with_rule(
                            format!("{name}_invoke_tag"),
                            NumberSpec::u8().fixed_value(0x02),
                            "mms-invoke-tag",
                        )
                        .number_with_rule(
                            format!("{name}_invoke_length"),
                            NumberSpec::u8().fixed_value(0x01),
                            "mms-invoke-length",
                        )
                        .number_with_rule(
                            format!("{name}_invoke_id"),
                            NumberSpec::u8().default_value(3),
                            "mms-invoke-id",
                        )
                        .number(
                            format!("{name}_service_tag"),
                            NumberSpec::u8().fixed_value(service_tag),
                        )
                        .number(
                            format!("{name}_service_length"),
                            NumberSpec::u8().relation(Relation::size_of(format!("{name}_args"))),
                        )
                        .block(args),
                ),
        )
    };

    set.push(named_variable_request("read", 0xA4, false));
    set.push(named_variable_request("write", 0xA5, true));

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;

    fn run(server: &mut MmsServer, packet: &[u8]) -> Outcome {
        let mut ctx = TraceContext::new();
        server.process(packet, &mut ctx)
    }

    fn frame(mms: &[u8]) -> Vec<u8> {
        let mut out = vec![0x03, 0x00];
        out.extend_from_slice(&((mms.len() + 7) as u16).to_be_bytes());
        out.extend_from_slice(&[0x02, 0xf0, 0x80]);
        out.extend_from_slice(mms);
        out
    }

    fn initiate(server: &mut MmsServer) {
        let packet = frame(&write_tlv(service::INITIATE, &[0x80, 0x02, 0x00, 0x01]));
        assert!(run(server, &packet).response().is_some());
    }

    fn confirmed(invoke_id: u8, service_tag: u8, args: &[u8]) -> Vec<u8> {
        let mut body = write_tlv(0x02, &[invoke_id]);
        body.extend(write_tlv(service_tag, args));
        frame(&write_tlv(service::CONFIRMED_REQUEST, &body))
    }

    #[test]
    fn initiate_opens_the_association() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        let identify = confirmed(1, 0x82, &[]);
        assert!(run(&mut server, &identify).response().is_some());
        assert_eq!(server.invoke_counter(), 1);
    }

    #[test]
    fn confirmed_request_before_initiate_is_rejected() {
        let mut server = MmsServer::new();
        let identify = confirmed(1, 0x82, &[]);
        assert!(matches!(
            run(&mut server, &identify),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn get_name_list_returns_logical_devices() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        let args = write_tlv(0x80, &[0x09]);
        let packet = confirmed(2, 0xA1, &args);
        let response = run(&mut server, &packet);
        let bytes = response.response().unwrap();
        let text = String::from_utf8_lossy(bytes);
        assert!(text.contains("simpleIOGenericIO"));
    }

    #[test]
    fn read_existing_variable_returns_float() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        let mut spec = write_tlv(0x1a, b"simpleIOGenericIO");
        spec.extend(write_tlv(0x1a, b"GGIO1$AnIn1"));
        let args = write_tlv(0xA0, &spec);
        let packet = confirmed(3, 0xA4, &args);
        let response = run(&mut server, &packet);
        let bytes = response.response().unwrap();
        // 0x87 tag with 4-byte float 1.25 somewhere in the reply.
        let expected = 1.25f32.to_be_bytes();
        assert!(bytes.windows(4).any(|window| window == expected));
    }

    #[test]
    fn read_missing_variable_returns_access_error() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        let mut spec = write_tlv(0x1a, b"simpleIOGenericIO");
        spec.extend(write_tlv(0x1a, b"GGIO1$Nope"));
        let args = write_tlv(0xA0, &spec);
        let packet = confirmed(4, 0xA4, &args);
        let response = run(&mut server, &packet);
        let bytes = response.response().unwrap();
        assert_eq!(bytes[bytes.len() - 1], 0x0a, "object-non-existent");
    }

    #[test]
    fn write_updates_the_point_database() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        let mut spec = write_tlv(0x1a, b"simpleIOGenericIO");
        spec.extend(write_tlv(0x1a, b"GGIO1$AnIn2"));
        let mut args = write_tlv(0xA0, &spec);
        args.extend(write_tlv(0x87, &7.5f32.to_be_bytes()));
        let packet = confirmed(5, 0xA5, &args);
        assert!(run(&mut server, &packet).response().is_some());
        assert_eq!(
            server.db.named_point("simpleIOGenericIO/GGIO1.AnIn2"),
            Some(7.5)
        );
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        assert!(matches!(run(&mut server, &[]), Outcome::ProtocolError(_)));
        assert!(matches!(
            run(&mut server, &[0x04, 0x00, 0x00, 0x07, 0x02, 0xf0, 0x80]),
            Outcome::ProtocolError(_)
        ));
        // TPKT length lies about the frame size.
        let mut bad = frame(&write_tlv(service::INITIATE, &[]));
        bad[3] = bad[3].wrapping_add(5);
        assert!(matches!(run(&mut server, &bad), Outcome::ProtocolError(_)));
        // Truncated TLV inside the MMS payload.
        let truncated = frame(&[0xA0, 0x20, 0x02]);
        assert!(matches!(
            run(&mut server, &truncated),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn conclude_closes_the_association() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        let conclude = frame(&write_tlv(service::CONCLUDE, &[]));
        assert!(run(&mut server, &conclude).response().is_some());
        let identify = confirmed(6, 0x82, &[]);
        assert!(matches!(
            run(&mut server, &identify),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn tlv_long_form_lengths_are_supported() {
        let value = vec![0xAB; 200];
        let mut encoded = vec![0x30, 0x81, 200];
        encoded.extend_from_slice(&value);
        let (tlv, next) = read_tlv(&encoded, 0).unwrap();
        assert_eq!(tlv.value.len(), 200);
        assert_eq!(next, encoded.len());
        assert!(read_tlv(&encoded[..50], 0).is_none(), "truncated long form");
    }

    #[test]
    fn default_model_packets_are_processed() {
        let mut server = MmsServer::new();
        initiate(&mut server);
        for model in data_models().models() {
            let packet = emit_default(model).unwrap();
            let outcome = run(&mut server, &packet);
            assert!(
                !outcome.is_fault(),
                "{}: default packet must not fault",
                model.name()
            );
            assert!(
                outcome.response().is_some(),
                "{}: default packet should get a response, got {outcome:?}",
                model.name()
            );
        }
    }

    #[test]
    fn models_share_invoke_and_string_rules() {
        let set = data_models();
        assert!(set.len() >= 5);
        assert!(set.rule_overlap() > 0.2, "overlap: {}", set.rule_overlap());
    }
}
