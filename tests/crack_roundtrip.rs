//! Cracking / emission round-trip properties across every built-in target's
//! data models, plus property-based tests on the cracker with arbitrary
//! byte strings.

use proptest::prelude::*;

use peachstar::{FileCracker, PuzzleCorpus};
use peachstar_datamodel::crack::crack;
use peachstar_datamodel::emit::{emit_default, emit_tree};
use peachstar_protocols::TargetId;

#[test]
fn every_default_packet_cracks_against_its_own_model() {
    for target in TargetId::ALL {
        let models = target.create().data_models();
        for model in models.models() {
            let packet = emit_default(model).expect("default packet emits");
            let tree = crack(model, &packet).unwrap_or_else(|e| {
                panic!("{}/{}: default packet fails to crack: {e}", target, model.name())
            });
            assert_eq!(tree.bytes(), &packet[..]);
            // Re-emitting the cracked tree with repair reproduces the packet.
            let re_emitted = emit_tree(model, &tree, true).expect("re-emission succeeds");
            assert_eq!(
                re_emitted, packet,
                "{}/{}: crack → emit round trip changed the packet",
                target,
                model.name()
            );
        }
    }
}

#[test]
fn cracked_packets_always_yield_nonempty_puzzles_with_rules_from_the_model() {
    for target in TargetId::ALL {
        let models = target.create().data_models();
        let mut cracker = FileCracker::new();
        let mut corpus = PuzzleCorpus::new();
        for model in models.models() {
            let packet = emit_default(model).expect("default packet emits");
            let added = cracker.crack_into(&models, &packet, &mut corpus);
            assert!(added > 0, "{}/{}: no puzzles added", target, model.name());
        }
        // Every model should now find a donor for at least one of its rules.
        for model in models.models() {
            let has_donor = model.rule_ids().iter().any(|rule| corpus.has_donor(*rule));
            assert!(
                has_donor,
                "{}/{}: no donor available after cracking every default packet",
                target,
                model.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cracker must never panic, whatever bytes it is fed.
    #[test]
    fn cracker_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let models = TargetId::Modbus.create().data_models();
        let mut cracker = FileCracker::new();
        let _ = cracker.crack(&models, &data);
    }

    /// A packet that cracks can always be re-emitted without repair to the
    /// exact same bytes (emission of the instantiation tree is lossless).
    #[test]
    fn crack_then_emit_without_repair_is_lossless(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let models = TargetId::Iccp.create().data_models();
        for model in models.models() {
            if let Ok(tree) = crack(model, &data) {
                let re_emitted = emit_tree(model, &tree, false).expect("emission succeeds");
                prop_assert_eq!(&re_emitted, &data);
            }
        }
    }

    /// Corpus insertion is idempotent: inserting the same puzzles twice
    /// never increases the corpus size the second time.
    #[test]
    fn corpus_insertion_is_idempotent(data in proptest::collection::vec(any::<u8>(), 4..64)) {
        let models = TargetId::Lib60870.create().data_models();
        let mut cracker = FileCracker::new();
        let mut corpus = PuzzleCorpus::new();
        let first = cracker.crack_into(&models, &data, &mut corpus);
        let second = cracker.crack_into(&models, &data, &mut corpus);
        prop_assert!(first >= second);
        prop_assert_eq!(second, 0);
    }
}
