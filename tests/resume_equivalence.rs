//! Resume equivalence: interrupting a campaign at *any* window boundary and
//! resuming from the snapshot must reproduce the uninterrupted run bit for
//! bit.
//!
//! Every test follows the same shape: run the campaign to completion, then
//! for **every** reset-aligned boundary run the same campaign only up to
//! that boundary, round-trip the snapshot through the wire format, resume a
//! *fresh* campaign from the decoded snapshot, and require the final report
//! to be identical — across strategies × targets × batch sizes × sessions ×
//! sharded merge barriers, plus chained (interrupt-the-resumed-run-again)
//! interruptions.

use peachstar::campaign::{Campaign, CampaignConfig, SessionConfig, ShardConfig, ShardedCampaign};
use peachstar::snapshot::{CampaignSnapshot, CheckpointConfig};
use peachstar::strategy::StrategyKind;
use peachstar::CampaignReport;
use peachstar_protocols::TargetId;

/// The deterministic fields of a report, in one comparable bundle
/// (everything except wall-clock timing).
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

fn config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(1_000)
        .rng_seed(seed)
        .sample_interval(100)
        .reset_interval(250)
}

/// Encode → decode → re-encode must be the identity on bytes; returns the
/// decoded snapshot so every resume below also exercises the wire format.
fn wire_round_trip(snapshot: &CampaignSnapshot) -> CampaignSnapshot {
    let bytes = snapshot.encode();
    let decoded = CampaignSnapshot::decode(&bytes).expect("snapshot decodes");
    assert_eq!(decoded.encode(), bytes, "canonical encoding round-trips");
    decoded
}

#[test]
fn sequential_resume_at_every_boundary_matches_uninterrupted() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Iec104, 7)] {
            let cfg = config(strategy, seed);
            let complete = deterministic(&Campaign::new(target.create(), cfg).run());
            let boundaries = Campaign::new(target.create(), cfg).window_boundaries();
            assert_eq!(*boundaries.last().expect("boundaries"), 1_000);
            for &boundary in &boundaries {
                let snapshot = Campaign::new(target.create(), cfg)
                    .run_to_boundary(boundary)
                    .expect("runs to the boundary");
                assert_eq!(snapshot.completed, boundary);
                let snapshot = wire_round_trip(&snapshot);
                let resumed = Campaign::new(target.create(), cfg)
                    .resume(&snapshot)
                    .expect("resumes");
                assert_eq!(
                    complete,
                    deterministic(&resumed),
                    "{strategy} on {target} seed {seed}: resume at {boundary} diverged"
                );
            }
        }
    }
}

#[test]
fn batched_resume_at_every_boundary_matches_uninterrupted() {
    for batch in [64, 250] {
        let cfg = config(StrategyKind::PeachStar, 5).batch(batch);
        let complete = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg).run());
        let boundaries = Campaign::new(TargetId::Modbus.create(), cfg).window_boundaries();
        for &boundary in &boundaries {
            let snapshot = Campaign::new(TargetId::Modbus.create(), cfg)
                .run_to_boundary(boundary)
                .expect("runs to the boundary");
            let snapshot = wire_round_trip(&snapshot);
            let resumed = Campaign::new(TargetId::Modbus.create(), cfg)
                .resume(&snapshot)
                .expect("resumes");
            assert_eq!(
                complete,
                deterministic(&resumed),
                "batch {batch}: resume at {boundary} diverged"
            );
        }
    }
}

#[test]
fn session_resume_at_every_session_boundary_matches_uninterrupted() {
    // Session-shaped windows: every boundary is a whole-session end, so the
    // restored schedule cursor is always 0 and the handshake replays from
    // the top of the next session.
    for (target, seed) in [(TargetId::Iec104, 1), (TargetId::Lib60870, 5)] {
        let cfg = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(400)
            .rng_seed(seed)
            .sample_interval(50)
            .sessions(SessionConfig::new(6));
        let complete = deterministic(&Campaign::new(target.create(), cfg).run());
        let boundaries = Campaign::new(target.create(), cfg).window_boundaries();
        assert!(boundaries.len() > 10, "plenty of session boundaries to test");
        for &boundary in &boundaries {
            let snapshot = Campaign::new(target.create(), cfg)
                .run_to_boundary(boundary)
                .expect("runs to the boundary");
            let snapshot = wire_round_trip(&snapshot);
            let resumed = Campaign::new(target.create(), cfg)
                .resume(&snapshot)
                .expect("resumes");
            assert_eq!(
                complete,
                deterministic(&resumed),
                "sessions on {target} seed {seed}: resume at {boundary} diverged"
            );
        }
    }
}

#[test]
fn sharded_resume_at_every_barrier_matches_uninterrupted() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let cfg = config(strategy, 3);
        let shard = ShardConfig::with_workers(2).sync_windows(1);
        let complete = deterministic(
            &ShardedCampaign::new(TargetId::Modbus.create(), cfg, shard).run(),
        );
        let barriers =
            ShardedCampaign::new(TargetId::Modbus.create(), cfg, shard).round_boundaries();
        for &barrier in &barriers {
            let snapshot = ShardedCampaign::new(TargetId::Modbus.create(), cfg, shard)
                .run_to_boundary(barrier)
                .expect("runs to the barrier");
            assert_eq!(snapshot.completed, barrier);
            let snapshot = wire_round_trip(&snapshot);
            let resumed = ShardedCampaign::new(TargetId::Modbus.create(), cfg, shard)
                .resume(&snapshot)
                .expect("resumes");
            assert_eq!(
                complete,
                deterministic(&resumed),
                "sharded {strategy}: resume at barrier {barrier} diverged"
            );
        }
    }
}

#[test]
fn sharded_snapshot_resumes_under_any_worker_count() {
    // The worker count is deliberately not part of the snapshot fingerprint:
    // barriers synchronise the full campaign state, so a snapshot taken with
    // N workers must resume bit-exactly under any other worker count.
    let cfg = config(StrategyKind::PeachStar, 11);
    let shard_two = ShardConfig::with_workers(2).sync_windows(2);
    let complete = deterministic(
        &ShardedCampaign::new(TargetId::Iec104.create(), cfg, shard_two).run(),
    );
    let barrier = ShardedCampaign::new(TargetId::Iec104.create(), cfg, shard_two)
        .round_boundaries()[0];
    let snapshot = ShardedCampaign::new(TargetId::Iec104.create(), cfg, shard_two)
        .run_to_boundary(barrier)
        .expect("runs to the barrier");
    for workers in [1, 3] {
        let shard = ShardConfig::with_workers(workers).sync_windows(2);
        let resumed = ShardedCampaign::new(TargetId::Iec104.create(), cfg, shard)
            .resume(&snapshot)
            .expect("resumes");
        assert_eq!(
            complete,
            deterministic(&resumed),
            "worker count {workers} changed the resumed campaign"
        );
    }
}

#[test]
fn chained_interruptions_compose() {
    // Interrupt, resume, interrupt the resumed run again, resume again: the
    // double-interrupted campaign still matches the uninterrupted one.
    let cfg = config(StrategyKind::PeachStar, 3);
    let complete = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg).run());
    let boundaries = Campaign::new(TargetId::Modbus.create(), cfg).window_boundaries();
    let (first, second) = (boundaries[0], boundaries[2]);
    let snapshot = Campaign::new(TargetId::Modbus.create(), cfg)
        .run_to_boundary(first)
        .expect("first interruption");
    let snapshot = Campaign::new(TargetId::Modbus.create(), cfg)
        .resume_to_boundary(&wire_round_trip(&snapshot), second)
        .expect("second interruption");
    assert_eq!(snapshot.completed, second);
    let resumed = Campaign::new(TargetId::Modbus.create(), cfg)
        .resume(&wire_round_trip(&snapshot))
        .expect("final resume");
    assert_eq!(complete, deterministic(&resumed));
}

#[test]
fn checkpointed_run_writes_resumable_snapshots_and_matches_plain_run() {
    let path = std::env::temp_dir().join(format!(
        "peachstar-resume-equivalence-{}.snap",
        std::process::id()
    ));
    let cfg = config(StrategyKind::PeachStar, 3);
    let plain = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg).run());
    let checkpointed = Campaign::new(TargetId::Modbus.create(), cfg)
        .run_checkpointed(&CheckpointConfig::new(path.clone(), 1))
        .expect("checkpointed run");
    assert_eq!(plain, deterministic(&checkpointed), "checkpointing is observationally free");

    // The last checkpoint on disk is the final state and resumes to the
    // identical (already finished) report.
    let snapshot = CampaignSnapshot::read_from(&path).expect("snapshot readable");
    std::fs::remove_file(&path).ok();
    assert_eq!(snapshot.completed, 1_000);
    let resumed = Campaign::new(TargetId::Modbus.create(), cfg)
        .resume(&snapshot)
        .expect("resume of a finished campaign");
    assert_eq!(plain, deterministic(&resumed));
}

#[test]
fn misaligned_or_mismatched_resume_is_rejected() {
    let cfg = config(StrategyKind::PeachStar, 3);
    let boundary = Campaign::new(TargetId::Modbus.create(), cfg).window_boundaries()[0];
    let snapshot = Campaign::new(TargetId::Modbus.create(), cfg)
        .run_to_boundary(boundary)
        .expect("runs to the boundary");

    // Not a window boundary.
    assert!(Campaign::new(TargetId::Modbus.create(), cfg)
        .run_to_boundary(boundary + 1)
        .is_err());
    // Wrong target.
    assert!(Campaign::new(TargetId::Iec104.create(), cfg)
        .resume(&snapshot)
        .is_err());
    // Wrong strategy.
    assert!(Campaign::new(TargetId::Modbus.create(), config(StrategyKind::Peach, 3))
        .resume(&snapshot)
        .is_err());
    // Wrong seed.
    assert!(Campaign::new(TargetId::Modbus.create(), cfg.rng_seed(4))
        .resume(&snapshot)
        .is_err());
    // Resuming further than the stop boundary is fine; resuming *to* the
    // same (or an earlier) one is not.
    assert!(Campaign::new(TargetId::Modbus.create(), cfg)
        .resume_to_boundary(&snapshot, boundary)
        .is_err());
}
