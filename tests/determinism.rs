//! Determinism and reproducibility: identical configurations produce
//! identical campaigns, and different seeds genuinely differ.

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

fn run(strategy: StrategyKind, seed: u64, executions: u64) -> (usize, u64, u64, usize) {
    let config = CampaignConfig::new(strategy)
        .executions(executions)
        .rng_seed(seed)
        .sample_interval(100);
    let report = Campaign::new(TargetId::Lib60870.create(), config).run();
    (
        report.final_paths(),
        report.responses,
        report.protocol_errors,
        report.unique_bugs(),
    )
}

#[test]
fn same_seed_same_campaign() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        assert_eq!(
            run(strategy, 77, 2_000),
            run(strategy, 77, 2_000),
            "{strategy}: campaigns with identical seeds must be identical"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(StrategyKind::PeachStar, 1, 2_000);
    let b = run(StrategyKind::PeachStar, 2, 2_000);
    assert_ne!(a, b, "different RNG seeds should produce different campaigns");
}

#[test]
fn longer_campaigns_cover_at_least_as_much() {
    let short = run(StrategyKind::PeachStar, 5, 1_000).0;
    let long = run(StrategyKind::PeachStar, 5, 3_000).0;
    assert!(
        long >= short,
        "a longer campaign with the same seed cannot cover fewer paths ({long} < {short})"
    );
}

#[test]
fn strategies_share_the_same_engine_but_differ_in_behaviour() {
    // With the same seed, the two strategies start identically (the corpus is
    // empty) but must diverge once feedback arrives.
    let peach = run(StrategyKind::Peach, 9, 4_000);
    let star = run(StrategyKind::PeachStar, 9, 4_000);
    assert_ne!(peach, star, "the strategies should not produce identical campaigns");
}
