//! Batched execution equivalence: `--batch` amortises per-packet dispatch,
//! it never changes what a campaign *is*.
//!
//! Three guarantees are pinned here, property-style over batch sizes ×
//! targets × strategies × seeds:
//!
//! 1. **Sequential equivalence for Peach** — the feedback-free baseline's
//!    batched report is bit-identical to the classic per-execution
//!    [`Campaign`] for *any* batch size: windows are reset-aligned, packets
//!    generate in global execution order off the same RNG stream, and
//!    results reduce in the same order through the same seams.
//! 2. **Determinism for Peach\*** — the feedback-driven strategy digests
//!    valuable seeds at batch ends (it has no sequential-equivalence claim,
//!    exactly like its sharded sibling), but a fixed (seed, batch) is fully
//!    reproducible, and with `batch >= window length` the batched stream
//!    coincides with a 1-worker sharded campaign syncing one window per
//!    round — the two barrier-fed modes are the *same* campaign.
//! 3. **Sessions compose** — with session-shaped windows every window is one
//!    whole session; batched session Peach still equals sequential session
//!    Peach.

use peachstar::campaign::{Campaign, CampaignConfig, SessionConfig, ShardConfig, ShardedCampaign};
use peachstar::strategy::StrategyKind;
use peachstar::CampaignReport;
use peachstar_protocols::TargetId;

/// The deterministic fields of a report, in one comparable bundle.
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

fn config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(1_500)
        .rng_seed(seed)
        .sample_interval(150)
        .reset_interval(250)
}

#[test]
fn batched_peach_equals_sequential_for_any_batch_size() {
    for (target, seed) in [
        (TargetId::Modbus, 3),
        (TargetId::Iec104, 7),
        (TargetId::Lib60870, 77),
        (TargetId::Dnp3, 9),
    ] {
        let cfg = config(StrategyKind::Peach, seed);
        let sequential = deterministic(&Campaign::new(target.create(), cfg).run());
        // Batch sizes straddling every interesting boundary: single-packet
        // batches, sizes that split a 250-execution window unevenly, exact
        // window multiples, and batches larger than the whole budget.
        for batch in [1, 7, 64, 250, 4_000] {
            let batched =
                deterministic(&Campaign::new(target.create(), cfg.batch(batch)).run());
            assert_eq!(
                sequential, batched,
                "Peach on {target} seed {seed}: batch {batch} diverged from sequential"
            );
        }
    }
}

#[test]
fn batch_of_one_collapses_to_the_sequential_loop_even_for_peachstar() {
    // With batch = 1 the batched driver's generate → execute → reduce
    // cadence is exactly the sequential step order (feedback lands before
    // the next packet is generated), so even the feedback-driven strategy
    // must match the classic loop bit for bit.
    for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Iec104, 5)] {
        let cfg = config(StrategyKind::PeachStar, seed);
        let sequential = deterministic(&Campaign::new(target.create(), cfg).run());
        let batched = deterministic(&Campaign::new(target.create(), cfg.batch(1)).run());
        assert_eq!(
            sequential, batched,
            "Peach* on {target} seed {seed}: batch 1 diverged from sequential"
        );
    }
}

#[test]
fn batched_peachstar_is_deterministic_per_batch_size() {
    for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Iec104, 5)] {
        for batch in [1, 64, 250] {
            let cfg = config(StrategyKind::PeachStar, seed).batch(batch);
            let first = deterministic(&Campaign::new(target.create(), cfg).run());
            let second = deterministic(&Campaign::new(target.create(), cfg).run());
            assert_eq!(
                first, second,
                "Peach* on {target} seed {seed} batch {batch}: not reproducible"
            );
            assert_eq!(
                first.responses + first.protocol_errors + first.fault_hits,
                1_500,
                "every execution reduced exactly once"
            );
            assert!(first.corpus_size > 0, "feedback reaches the strategy");
        }
    }
}

#[test]
fn batched_peachstar_with_whole_windows_equals_single_worker_sharding() {
    // With `batch >= window length` every batch is exactly one reset window,
    // so the batched loop performs the same generate-window → execute →
    // reduce rounds as a 1-worker sharded campaign syncing one window per
    // round. The two barrier-fed modes must therefore produce the *same*
    // campaign — for both strategies, not just the feedback-free one.
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [(TargetId::Modbus, 11), (TargetId::Iec104, 5)] {
            let cfg = config(strategy, seed);
            let batched =
                deterministic(&Campaign::new(target.create(), cfg.batch(250)).run());
            let sharded = deterministic(
                &ShardedCampaign::new(
                    target.create(),
                    cfg,
                    ShardConfig::with_workers(1).sync_windows(1),
                )
                .run(),
            );
            assert_eq!(
                batched, sharded,
                "{strategy} on {target} seed {seed}: batched != 1w sharded"
            );
        }
    }
}

#[test]
fn batched_session_peach_equals_sequential_session_campaign() {
    // Session-shaped windows: 1 handshake + 6 payload + 1 teardown packets,
    // PerSession resets — every window is one whole session, so sessions
    // batch naturally (a batch never tears a session apart unless asked to
    // with a smaller batch size, which still reduces in execution order).
    for (target, seed) in [
        (TargetId::Iec104, 1),
        (TargetId::Lib60870, 5),
        (TargetId::Iccp, 42),
    ] {
        let cfg = CampaignConfig::new(StrategyKind::Peach)
            .executions(1_200)
            .rng_seed(seed)
            .sample_interval(150)
            .sessions(SessionConfig::new(6));
        let sequential = deterministic(&Campaign::new(target.create(), cfg).run());
        for batch in [3, 8, 256] {
            let batched =
                deterministic(&Campaign::new(target.create(), cfg.batch(batch)).run());
            assert_eq!(
                sequential, batched,
                "session Peach on {target} seed {seed}: batch {batch} diverged"
            );
        }
    }
}

#[test]
fn summary_only_decode_never_changes_a_batched_report() {
    // `summary_only` skips response assembly and error-string formatting
    // inside the decoders — operational output the campaign loop never
    // reads. Control flow, state and traces are identical by construction
    // (debug builds cross-check a sampled packet per window), so every
    // deterministic report field must match the full-decode run bit for bit
    // — for every target, both strategies, and across batch sizes.
    for (target, seed) in [
        (TargetId::Modbus, 3),
        (TargetId::Iec104, 7),
        (TargetId::Lib60870, 77),
        (TargetId::Dnp3, 9),
        (TargetId::Iccp, 42),
        (TargetId::Iec61850, 13),
    ] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            for batch in [7, 250] {
                let cfg = config(strategy, seed).batch(batch);
                let full = deterministic(&Campaign::new(target.create(), cfg).run());
                let summary =
                    deterministic(&Campaign::new(target.create(), cfg.summary_only()).run());
                assert_eq!(
                    full, summary,
                    "{strategy} on {target} seed {seed} batch {batch}: summary-only diverged"
                );
            }
        }
    }
}

#[test]
fn summary_only_decode_never_changes_a_sharded_report() {
    // The sharded engine arms the same sink on every worker's fast path;
    // the merge barrier and recovery paths are untouched, so worker-count
    // invariance and summary/full equality compose.
    for (target, seed) in [(TargetId::Modbus, 11), (TargetId::Iec104, 5)] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            for workers in [1, 3] {
                let cfg = config(strategy, seed).batch(64);
                let shard = ShardConfig::with_workers(workers).sync_windows(2);
                let full = deterministic(
                    &ShardedCampaign::new(target.create(), cfg, shard).run(),
                );
                let summary = deterministic(
                    &ShardedCampaign::new(target.create(), cfg.summary_only(), shard).run(),
                );
                assert_eq!(
                    full, summary,
                    "{strategy} on {target} seed {seed}, {workers} workers: \
                     sharded summary-only diverged"
                );
            }
        }
    }
}

#[test]
fn batch_size_is_part_of_peachstar_semantics() {
    // Documentation of the design rather than a requirement: the batch size
    // decides when Peach* digests valuable seeds, so different batch sizes
    // are different (each individually deterministic) campaigns — while the
    // feedback-free baseline provably cannot see the batch size at all
    // (asserted exhaustively above).
    let cfg = config(StrategyKind::PeachStar, 3);
    let narrow = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg.batch(1)).run());
    let wide = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg.batch(250)).run());
    // Narrow batches deliver feedback almost per-execution; the packet
    // streams diverge as soon as the first valuable seed queues a semantic
    // batch earlier. (Equality would mean feedback never influenced
    // generation — a broken Peach*.)
    assert_ne!(
        narrow, wide,
        "Peach* must see the barrier cadence; identical reports mean feedback is dead"
    );
}
