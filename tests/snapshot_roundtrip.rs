//! Property tests for the snapshot wire format: arbitrary campaign states
//! must survive encode → decode bit-exactly, and damaged bytes — truncated,
//! flipped, wrong-version, wrong-magic — must be rejected with a typed
//! error, never a panic.
//!
//! The vendored proptest only draws flat integer vectors, so each property
//! consumes a `Vec<u64>` entropy pool through the [`Draw`] cursor and builds
//! a structured [`CampaignSnapshot`] from it deterministically.

use proptest::prelude::*;

use peachstar::campaign::BugRecord;
use peachstar::engine::{MonitorState, ScheduleState};
use peachstar::snapshot::{CampaignSnapshot, SnapshotError, SnapshotMeta, MAGIC, VERSION};
use peachstar::strategy::{StrategyKind, StrategyState};
use peachstar::{PuzzleCorpus, Seed, SeedPool, SeriesPoint};
use peachstar_coverage::{CoverageMap, PathId, MAP_SIZE};
use peachstar_datamodel::{Puzzle, RuleId};
use peachstar_protocols::{Fault, FaultKind};

/// Cursor over a proptest-drawn entropy pool; cycles when exhausted so any
/// non-empty `Vec<u64>` can feed an arbitrarily shaped snapshot.
struct Draw {
    words: Vec<u64>,
    at: usize,
}

impl Draw {
    fn new(words: Vec<u64>) -> Self {
        assert!(!words.is_empty());
        Self { words, at: 0 }
    }

    fn next(&mut self) -> u64 {
        let word = self.words[self.at % self.words.len()];
        self.at += 1;
        // Decorrelate wrap-around passes so a short pool still produces
        // varied fields (splitmix64 finalizer).
        let mut z = word.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.at as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn seed(&mut self) -> Seed {
        const MODELS: [&str; 3] = ["modbus/read", "iec104/asdu", "dnp3/frame"];
        let model = MODELS[self.below(MODELS.len() as u64) as usize];
        Seed::new(self.bytes(24), model, self.flag())
    }
}

const BUG_SITES: [&str; 6] = [
    "parse_header",
    "decode_asdu",
    "copy_payload",
    "session_teardown",
    "crc_check",
    "reassembly",
];

fn arbitrary_corpus(draw: &mut Draw) -> PuzzleCorpus {
    let capacity = self::capacity(draw);
    let mut corpus = PuzzleCorpus::with_capacity_per_rule(capacity);
    for _ in 0..draw.below(12) {
        let rule = RuleId::from_raw(draw.below(20));
        let mut content = draw.bytes(8);
        content.push(draw.next() as u8); // never empty
        corpus.insert(Puzzle::new(rule, "prop", content));
    }
    corpus
}

fn capacity(draw: &mut Draw) -> usize {
    draw.below(8) as usize + 1
}

fn arbitrary_snapshot(draw: &mut Draw) -> CampaignSnapshot {
    const TARGETS: [&str; 3] = ["modbus", "iec104", "lib60870"];

    let strategy_state = match draw.below(3) {
        0 => StrategyState::Stateless,
        1 => StrategyState::Peach {
            generated: draw.next(),
        },
        _ => StrategyState::PeachStar {
            corpus: arbitrary_corpus(draw),
            queue: (0..draw.below(6)).map(|_| draw.seed()).collect(),
            semantic_generated: draw.next(),
            random_generated: draw.next(),
        },
    };
    let strategy = if matches!(strategy_state, StrategyState::PeachStar { .. }) {
        StrategyKind::PeachStar
    } else {
        StrategyKind::Peach
    };

    let meta = SnapshotMeta {
        target: TARGETS[draw.below(TARGETS.len() as u64) as usize].to_string(),
        strategy,
        executions: draw.next(),
        rng_seed: draw.next(),
        sample_interval: draw.below(10_000) + 1,
        reset_interval: draw.below(10_000) + 1,
        session: draw
            .flag()
            .then(|| (draw.below(64) + 1, draw.below(7) as u8 + 1)),
        batch: draw.flag().then(|| draw.below(512) + 1),
        sync_windows: draw.flag().then(|| draw.below(16) + 1),
    };

    let slots: Vec<(usize, u8)> = (0..draw.below(48))
        .map(|_| {
            (
                draw.below(MAP_SIZE as u64) as usize,
                (draw.below(255) + 1) as u8,
            )
        })
        .collect();
    let paths: Vec<PathId> = (0..draw.below(32))
        .map(|_| PathId::new(draw.next()))
        .collect();
    let map = CoverageMap::from_parts(slots, paths, draw.next());

    let mut pool = SeedPool::new();
    for _ in 0..draw.below(8) {
        let seed = draw.seed();
        pool.push(seed, PathId::new(draw.next()), draw.below(64) as usize);
    }

    const KINDS: [FaultKind; 4] = [
        FaultKind::Segv,
        FaultKind::HeapUseAfterFree,
        FaultKind::HeapBufferOverflow,
        FaultKind::Hang,
    ];
    let monitor = MonitorState {
        series: (0..draw.below(8))
            .map(|_| SeriesPoint {
                executions: draw.next(),
                paths: draw.below(1 << 32) as usize,
                edges: draw.below(1 << 32) as usize,
                faults: draw.below(1 << 32) as usize,
            })
            .collect(),
        bugs: (0..draw.below(BUG_SITES.len() as u64 + 1))
            .map(|bug| BugRecord {
                fault: Fault::new(
                    KINDS[draw.below(KINDS.len() as u64) as usize],
                    BUG_SITES[bug as usize],
                ),
                first_execution: draw.next(),
                packet: draw.bytes(32),
                model: "prop/model".to_string(),
            })
            .collect(),
        responses: draw.next(),
        protocol_errors: draw.next(),
        fault_hits: draw.next(),
    };

    CampaignSnapshot {
        meta,
        completed: draw.next(),
        rng_state: [draw.next(), draw.next(), draw.next(), draw.next()],
        map,
        pool,
        monitor,
        schedule: ScheduleState {
            strategy: strategy_state,
            cursor: draw.below(256),
        },
    }
}

/// The snapshot module's FNV-1a 64, re-implemented locally so tests can
/// re-stamp a doctored body's trailing checksum. The constants are part of
/// the stable wire format.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Replaces the trailing checksum with one valid for the (possibly
/// doctored) body, so structural validation is reached.
fn restamp(bytes: &mut Vec<u8>) {
    let body_len = bytes.len() - 8;
    let checksum = fnv1a(&bytes[..body_len]);
    bytes.truncate(body_len);
    bytes.extend_from_slice(&checksum.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_is_the_identity(words in proptest::collection::vec(any::<u64>(), 24..96)) {
        let snapshot = arbitrary_snapshot(&mut Draw::new(words));
        let bytes = snapshot.encode();
        let decoded = CampaignSnapshot::decode(&bytes).expect("valid snapshot decodes");

        // Canonical: re-encoding the decoded state reproduces the bytes.
        prop_assert_eq!(decoded.encode(), bytes);

        // And the components match where equality is defined.
        prop_assert_eq!(&decoded.meta, &snapshot.meta);
        prop_assert_eq!(decoded.completed, snapshot.completed);
        prop_assert_eq!(decoded.rng_state, snapshot.rng_state);
        prop_assert_eq!(&decoded.schedule, &snapshot.schedule);
        prop_assert_eq!(&decoded.monitor, &snapshot.monitor);
        prop_assert_eq!(decoded.map.executions(), snapshot.map.executions());
        prop_assert_eq!(decoded.map.edges_covered(), snapshot.map.edges_covered());
        prop_assert_eq!(decoded.map.paths_covered(), snapshot.map.paths_covered());
        prop_assert_eq!(decoded.pool.len(), snapshot.pool.len());
    }

    #[test]
    fn every_truncation_is_rejected(words in proptest::collection::vec(any::<u64>(), 24..64)) {
        let bytes = arbitrary_snapshot(&mut Draw::new(words)).encode();
        let step = (bytes.len() / 17).max(1);
        for len in (0..bytes.len()).step_by(step) {
            prop_assert!(
                CampaignSnapshot::decode(&bytes[..len]).is_err(),
                "decode accepted a {len}-byte prefix of {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn single_byte_corruption_is_rejected(words in proptest::collection::vec(any::<u64>(), 24..64)) {
        let mut draw = Draw::new(words);
        let bytes = arbitrary_snapshot(&mut draw).encode();
        for _ in 0..8 {
            let position = draw.below(bytes.len() as u64) as usize;
            let flip = (draw.below(255) + 1) as u8;
            let mut doctored = bytes.clone();
            doctored[position] ^= flip;
            // FNV-1a over the body guarantees detection: a body flip changes
            // the computed checksum, a trailer flip changes the stored one,
            // and a magic flip fails the magic check.
            prop_assert!(
                CampaignSnapshot::decode(&doctored).is_err(),
                "decode accepted byte {position} xor {flip:#04x}"
            );
        }
    }

    #[test]
    fn wrong_version_is_named_not_guessed(words in proptest::collection::vec(any::<u64>(), 24..64)) {
        let mut draw = Draw::new(words);
        let mut bytes = arbitrary_snapshot(&mut draw).encode();
        let version = VERSION + 1 + draw.below(1000) as u32;
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        restamp(&mut bytes);
        let err = CampaignSnapshot::decode(&bytes).expect_err("future version rejected");
        prop_assert!(
            matches!(err, SnapshotError::UnsupportedVersion(v) if v == version),
            "expected UnsupportedVersion({version}), got {err:?}"
        );
    }

    #[test]
    fn wrong_magic_is_rejected(words in proptest::collection::vec(any::<u64>(), 24..64)) {
        let mut draw = Draw::new(words);
        let mut bytes = arbitrary_snapshot(&mut draw).encode();
        let position = draw.below(MAGIC.len() as u64) as usize;
        bytes[position] ^= (draw.below(255) + 1) as u8;
        restamp(&mut bytes);
        let err = CampaignSnapshot::decode(&bytes).expect_err("bad magic rejected");
        prop_assert!(matches!(err, SnapshotError::BadMagic), "got {err:?}");
    }
}

#[test]
fn empty_and_tiny_inputs_are_truncated_not_panics() {
    assert!(matches!(
        CampaignSnapshot::decode(&[]),
        Err(SnapshotError::Truncated)
    ));
    assert!(matches!(
        CampaignSnapshot::decode(&MAGIC),
        Err(SnapshotError::Truncated)
    ));
    assert!(matches!(
        CampaignSnapshot::decode(b"NOTASNAP-------------"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut draw = Draw::new(vec![7, 11, 13]);
    let mut bytes = arbitrary_snapshot(&mut draw).encode();
    bytes.extend_from_slice(&[0u8; 16]);
    restamp(&mut bytes);
    assert!(CampaignSnapshot::decode(&bytes).is_err());
}
