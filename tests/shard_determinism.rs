//! Shard determinism: the worker count of a sharded campaign decides how
//! fast the report is produced, never what it contains.
//!
//! Two guarantees are pinned here, property-style over several seeds:
//!
//! 1. **Worker invariance** — `workers = 1` and `workers = k` produce
//!    bit-identical reports for both strategies (windows are reset-aligned
//!    and results merge in global execution order, so scheduling cannot
//!    leak into the result).
//! 2. **Sequential equivalence for Peach** — the feedback-free baseline's
//!    sharded report equals the classic sequential [`Campaign`] exactly:
//!    its packet stream depends only on the RNG, and every window replays
//!    the target state the sequential loop would have had.
//!
//! Peach\* has no sequential-equivalence claim (it digests valuable seeds
//! at the merge barrier rather than per execution), which is why guarantee 1
//! is asserted for it separately.

use peachstar::campaign::{Campaign, CampaignConfig, SessionConfig, ShardConfig, ShardedCampaign};
use peachstar::strategy::StrategyKind;
use peachstar::CampaignReport;
use peachstar_protocols::TargetId;

/// The deterministic fields of a report, in one comparable bundle.
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

fn config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(2_000)
        .rng_seed(seed)
        .sample_interval(200)
        .reset_interval(250)
}

fn sharded(target: TargetId, config: CampaignConfig, workers: usize) -> Deterministic {
    let report = ShardedCampaign::new(
        target.create(),
        config,
        ShardConfig::with_workers(workers).sync_windows(4),
    )
    .run();
    deterministic(&report)
}

#[test]
fn worker_count_never_changes_the_report() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [
            (TargetId::Modbus, 3),
            (TargetId::Iec104, 7),
            (TargetId::Lib60870, 77),
        ] {
            let one = sharded(target, config(strategy, seed), 1);
            for workers in [2, 4] {
                let many = sharded(target, config(strategy, seed), workers);
                assert_eq!(
                    one, many,
                    "{strategy} on {target} seed {seed}: {workers} workers diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_peach_baseline_equals_sequential_campaign() {
    for (target, seed) in [
        (TargetId::Modbus, 1),
        (TargetId::Modbus, 42),
        (TargetId::Iec104, 5),
        (TargetId::Dnp3, 9),
    ] {
        let cfg = config(StrategyKind::Peach, seed);
        let sequential = deterministic(&Campaign::new(target.create(), cfg).run());
        for workers in [1, 4] {
            let parallel = sharded(target, cfg, workers);
            assert_eq!(
                sequential, parallel,
                "Peach on {target} seed {seed}: sharded ({workers}w) != sequential"
            );
        }
    }
}

/// Session-shaped config: sessions of 1 handshake + 6 payload + 1 teardown
/// packets, so windows are 8-execution sessions.
fn session_config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(2_000)
        .rng_seed(seed)
        .sample_interval(200)
        .sessions(SessionConfig::new(6))
}

#[test]
fn worker_count_never_changes_a_session_campaign_report() {
    // Same guarantee as the classic campaign, property-style over seeds ×
    // session-capable targets × strategies: windows are whole sessions and
    // results merge in global execution order, so the worker count cannot
    // leak into the report.
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [
            (TargetId::Iec104, 3),
            (TargetId::Lib60870, 7),
            (TargetId::Iec61850, 21),
            (TargetId::Iccp, 77),
        ] {
            let one = sharded(target, session_config(strategy, seed), 1);
            for workers in [2, 4] {
                let many = sharded(target, session_config(strategy, seed), workers);
                assert_eq!(
                    one, many,
                    "{strategy} sessions on {target} seed {seed}: {workers} workers diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_session_peach_baseline_equals_sequential_campaign() {
    // The feedback-free baseline's session stream depends only on the RNG
    // and the session plan; every sharded window replays one whole session
    // from the just-reset target state — exactly what the sequential
    // per-session reset policy produces.
    for (target, seed) in [
        (TargetId::Iec104, 1),
        (TargetId::Lib60870, 5),
        (TargetId::Iccp, 42),
    ] {
        let cfg = session_config(StrategyKind::Peach, seed);
        let sequential = deterministic(&Campaign::new(target.create(), cfg).run());
        for workers in [1, 4] {
            let parallel = sharded(target, cfg, workers);
            assert_eq!(
                sequential, parallel,
                "Peach sessions on {target} seed {seed}: sharded ({workers}w) != sequential"
            );
        }
    }
}

#[test]
fn sync_window_width_is_part_of_peachstar_semantics() {
    // Not a determinism requirement — documentation of the design: for the
    // feedback-free baseline the barrier distance is irrelevant, while for
    // Peach* it decides when valuable seeds reach the strategy.
    let cfg = config(StrategyKind::Peach, 3);
    let narrow = deterministic(
        &ShardedCampaign::new(
            TargetId::Modbus.create(),
            cfg,
            ShardConfig::with_workers(2).sync_windows(1),
        )
        .run(),
    );
    let wide = deterministic(
        &ShardedCampaign::new(
            TargetId::Modbus.create(),
            cfg,
            ShardConfig::with_workers(2).sync_windows(8),
        )
        .run(),
    );
    assert_eq!(narrow, wide, "Peach must not see the barrier distance");
}
