//! Table I reproduction test: Peach\* rediscovers the planted
//! vulnerabilities that stand in for the paper's nine previously-unknown
//! bugs (3 SEGV in lib60870; use-after-free + SEGV in libmodbus; 3 SEGV and
//! a heap buffer overflow in libiec_iccp_mod).

use std::collections::{BTreeMap, HashSet};

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::{FaultKind, TargetId};

/// Runs a few moderately sized Peach* campaigns and returns the union of
/// unique fault sites per kind.
fn discovered(target: TargetId, executions: u64, seeds: &[u64]) -> BTreeMap<FaultKind, HashSet<&'static str>> {
    let mut by_kind: BTreeMap<FaultKind, HashSet<&'static str>> = BTreeMap::new();
    for &seed in seeds {
        let config = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(executions)
            .rng_seed(seed);
        let report = Campaign::new(target.create(), config).run();
        for bug in &report.bugs {
            by_kind.entry(bug.fault.kind).or_default().insert(bug.fault.site);
        }
    }
    by_kind
}

#[test]
fn lib60870_segv_bugs_are_found() {
    let found = discovered(TargetId::Lib60870, 25_000, &[1, 2]);
    let segv = found.get(&FaultKind::Segv).map_or(0, HashSet::len);
    assert!(
        segv >= 2,
        "expected at least two of the three lib60870 SEGV sites, found {segv}"
    );
}

#[test]
fn libmodbus_bugs_are_found() {
    let found = discovered(TargetId::Modbus, 25_000, &[4, 5]);
    let total: usize = found.values().map(HashSet::len).sum();
    assert!(
        total >= 1,
        "expected at least one of the two libmodbus bugs, found {found:?}"
    );
    // The SEGV in read/write-multiple is the shallower of the two and should
    // reliably appear.
    assert!(
        found.contains_key(&FaultKind::Segv) || found.contains_key(&FaultKind::HeapUseAfterFree),
        "neither libmodbus bug class was triggered: {found:?}"
    );
}

#[test]
fn iccp_bugs_are_found() {
    let found = discovered(TargetId::Iccp, 25_000, &[7, 8]);
    let total: usize = found.values().map(HashSet::len).sum();
    assert!(
        total >= 2,
        "expected at least two of the four libiec_iccp_mod bugs, found {found:?}"
    );
}

#[test]
fn clean_targets_stay_clean() {
    // The paper found no bugs in IEC104, libiec61850 or opendnp3; our
    // stand-ins for those targets must not fault either.
    for target in [TargetId::Iec104, TargetId::Iec61850, TargetId::Dnp3] {
        let found = discovered(target, 10_000, &[10]);
        assert!(
            found.is_empty(),
            "{target}: unexpected faults {found:?}"
        );
    }
}
