//! Cross-crate integration tests: full campaigns against every built-in
//! target, exercising coverage feedback, cracking, semantic generation and
//! reporting together.

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

fn config(strategy: StrategyKind, executions: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(executions)
        .sample_interval(200)
        .rng_seed(2024)
}

#[test]
fn every_target_yields_coverage_with_both_fuzzers() {
    for target in TargetId::ALL {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let report = Campaign::new(target.create(), config(strategy, 2_000)).run();
            assert!(
                report.final_paths() > 1,
                "{strategy} on {target}: expected more than one path, got {}",
                report.final_paths()
            );
            assert!(
                report.responses > 0,
                "{strategy} on {target}: at least some generated packets must be valid"
            );
            assert_eq!(report.executions, 2_000);
        }
    }
}

#[test]
fn peachstar_retains_valuable_seeds_and_builds_a_corpus_everywhere() {
    let mut targets_with_corpus = 0usize;
    for target in TargetId::ALL {
        let report = Campaign::new(target.create(), config(StrategyKind::PeachStar, 4_000)).run();
        assert!(
            report.valuable_seeds > 0,
            "{target}: valuable seeds should be retained"
        );
        if report.corpus_size > 0 {
            targets_with_corpus += 1;
        }
    }
    // Every target retains valuable seeds; on a short budget the odd target
    // may not yet have cracked one into puzzles, so require most rather than
    // all to keep the test robust.
    assert!(
        targets_with_corpus >= TargetId::ALL.len() - 1,
        "only {targets_with_corpus} of {} targets built a puzzle corpus",
        TargetId::ALL.len()
    );
}

#[test]
fn coverage_series_is_monotone_for_every_target() {
    for target in TargetId::ALL {
        let report = Campaign::new(target.create(), config(StrategyKind::PeachStar, 1_500)).run();
        let mut last_paths = 0;
        let mut last_edges = 0;
        for point in report.series.points() {
            assert!(point.paths >= last_paths, "{target}: paths regressed");
            assert!(point.edges >= last_edges, "{target}: edges regressed");
            last_paths = point.paths;
            last_edges = point.edges;
        }
    }
}

#[test]
fn baseline_never_reports_a_corpus() {
    for target in [TargetId::Modbus, TargetId::Iccp] {
        let report = Campaign::new(target.create(), config(StrategyKind::Peach, 1_000)).run();
        assert_eq!(report.corpus_size, 0);
    }
}

#[test]
fn bug_records_replay_against_a_fresh_target() {
    use peachstar_coverage::TraceContext;

    // Faults recorded by a campaign must be reproducible on a fresh target
    // instance fed the recorded packet (after rebuilding any required
    // session state, which for lib60870 is a single STARTDT frame).
    let report = Campaign::new(
        TargetId::Lib60870.create(),
        config(StrategyKind::PeachStar, 15_000),
    )
    .run();
    for bug in &report.bugs {
        let mut target = TargetId::Lib60870.create();
        let mut ctx = TraceContext::new();
        let _ = target.process(&[0x68, 0x04, 0x07, 0x00, 0x00, 0x00], &mut ctx);
        let outcome = target.process(&bug.packet, &mut ctx);
        assert_eq!(
            outcome.fault().map(|f| f.site),
            Some(bug.fault.site),
            "recorded bug packet should reproduce the same fault site"
        );
    }
}
