//! Stateful session fuzzing: the workload-level guarantees.
//!
//! 1. **Coverage gain** — a session campaign (guaranteed handshake →
//!    mutated ASDUs → teardown per session) accumulates strictly more
//!    coverage edges than the equivalent single-packet campaign at the same
//!    execution budget and the same reset cadence. The single-packet arm
//!    resets every `session_len` executions too, so the *only* difference
//!    is the session structure: the classic campaign must stumble into the
//!    handshake by chance before any deep packet counts, the session
//!    campaign opens every session deterministically.
//! 2. **Session integrity** — a session never straddles a target reset or
//!    a sharded merge barrier: the target resets exactly at session starts
//!    and every session replays handshake-first, in both the sequential and
//!    the sharded engine.

use std::sync::{Arc, Mutex};

use peachstar::campaign::{
    Campaign, CampaignConfig, CampaignReport, SessionConfig, ShardConfig, ShardedCampaign,
};
use peachstar::strategy::StrategyKind;
use peachstar_coverage::TraceContext;
use peachstar_datamodel::DataModelSet;
use peachstar_protocols::{iec104::Iec104Server, Outcome, SessionTemplate, Target, TargetId};

fn final_edges(report: &CampaignReport) -> usize {
    report.series.points().last().map_or(0, |point| point.edges)
}

/// ISSUE acceptance criterion: `--target iec104 --sessions` beats the
/// equivalent single-packet campaign on accumulated edges, at the same
/// budget, for both strategies and several seeds.
#[test]
fn session_campaign_accumulates_strictly_more_edges_than_single_packet() {
    const EXECUTIONS: u64 = 5_000;
    const PAYLOAD: u64 = 8;
    let session_len = PAYLOAD + 2; // handshake + payload + teardown
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for seed in [1u64, 5, 9] {
            let session_report = Campaign::new(
                TargetId::Iec104.create(),
                CampaignConfig::new(strategy)
                    .executions(EXECUTIONS)
                    .rng_seed(seed)
                    .sample_interval(500)
                    .sessions(SessionConfig::new(PAYLOAD)),
            )
            .run();
            let single_packet_report = Campaign::new(
                TargetId::Iec104.create(),
                CampaignConfig::new(strategy)
                    .executions(EXECUTIONS)
                    .rng_seed(seed)
                    .sample_interval(500)
                    .reset_interval(session_len),
            )
            .run();
            let (session_edges, single_edges) = (
                final_edges(&session_report),
                final_edges(&single_packet_report),
            );
            assert!(
                session_edges > single_edges,
                "{strategy} seed {seed}: session campaign must accumulate strictly more \
                 edges ({session_edges}) than the single-packet campaign ({single_edges})"
            );
        }
    }
}

/// Event log shared by a probe target and all its `clone_fresh` copies.
type EventLog = Arc<Mutex<Vec<Event>>>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Reset,
    Packet(Vec<u8>),
}

/// Wraps the IEC 104 server and records every reset and processed packet,
/// so tests can check *where* resets fall in the execution stream.
struct ProbeTarget {
    inner: Iec104Server,
    log: EventLog,
}

impl ProbeTarget {
    fn new() -> (Self, EventLog) {
        let log: EventLog = Arc::default();
        (
            Self {
                inner: Iec104Server::new(),
                log: Arc::clone(&log),
            },
            log,
        )
    }
}

impl Target for ProbeTarget {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn data_models(&self) -> DataModelSet {
        self.inner.data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        self.log
            .lock()
            .unwrap()
            .push(Event::Packet(packet.to_vec()));
        self.inner.process(packet, ctx)
    }

    fn reset(&mut self) {
        self.log.lock().unwrap().push(Event::Reset);
        self.inner.reset();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self {
            inner: Iec104Server::new(),
            log: Arc::clone(&self.log),
        })
    }

    fn session_template(&self) -> Option<SessionTemplate> {
        self.inner.session_template()
    }
}

const STARTDT: [u8; 6] = [0x68, 0x04, 0x07, 0x00, 0x00, 0x00];
const STOPDT: [u8; 6] = [0x68, 0x04, 0x13, 0x00, 0x00, 0x00];

/// Asserts the session invariant on a recorded event stream: resets happen
/// exactly at session boundaries (never inside a session), every session
/// opens with STARTDT and closes with STOPDT.
fn assert_sessions_intact(events: &[Event], session_len: usize, executions: usize) {
    let mut position_in_session = 0usize;
    let mut packets_seen = 0usize;
    for event in events {
        match event {
            Event::Reset => {
                assert_eq!(
                    position_in_session, 0,
                    "reset fired {position_in_session} packets into a session \
                     (after {packets_seen} total packets)"
                );
            }
            Event::Packet(bytes) => {
                if position_in_session == 0 {
                    assert_eq!(
                        bytes[..],
                        STARTDT[..],
                        "session must open with STARTDT (packet {packets_seen})"
                    );
                } else if position_in_session == session_len - 1 {
                    assert_eq!(
                        bytes[..],
                        STOPDT[..],
                        "session must close with STOPDT (packet {packets_seen})"
                    );
                }
                packets_seen += 1;
                position_in_session = (position_in_session + 1) % session_len;
            }
        }
    }
    assert_eq!(packets_seen, executions, "whole budget executed");
}

/// Regression: in the sequential engine, the per-session reset policy never
/// fires inside a session, and every session replays handshake → payload →
/// teardown in order.
#[test]
fn sequential_session_never_straddles_a_reset() {
    const PAYLOAD: u64 = 4;
    const EXECUTIONS: u64 = 600; // a whole number of 6-packet sessions
    let (target, log) = ProbeTarget::new();
    let report = Campaign::new(
        Box::new(target),
        CampaignConfig::new(StrategyKind::Peach)
            .executions(EXECUTIONS)
            .rng_seed(11)
            .sample_interval(100)
            .sessions(SessionConfig::new(PAYLOAD)),
    )
    .run();
    assert_eq!(report.executions, EXECUTIONS);
    let events = log.lock().unwrap().clone();
    assert_sessions_intact(&events, (PAYLOAD + 2) as usize, EXECUTIONS as usize);
}

/// Regression: in the sharded engine every window is one whole session, so
/// neither the per-window worker reset nor the merge barrier (windows are
/// merged round-by-round) can fall inside a session. Run with one worker so
/// the shared log records the window stream in order.
#[test]
fn sharded_session_never_straddles_a_reset_or_merge_barrier() {
    const PAYLOAD: u64 = 4;
    const EXECUTIONS: u64 = 600;
    let (target, log) = ProbeTarget::new();
    let report = ShardedCampaign::new(
        Box::new(target),
        CampaignConfig::new(StrategyKind::PeachStar)
            .executions(EXECUTIONS)
            .rng_seed(11)
            .sample_interval(100)
            .sessions(SessionConfig::new(PAYLOAD)),
        // A tiny barrier distance: a merge barrier every 2 sessions.
        ShardConfig::with_workers(1).sync_windows(2),
    )
    .run();
    assert_eq!(report.executions, EXECUTIONS);
    let events = log.lock().unwrap().clone();
    // The sharded worker resets at the start of every window; with
    // session-shaped windows that is exactly one reset per session.
    let resets = events.iter().filter(|e| matches!(e, Event::Reset)).count();
    assert_eq!(
        resets as u64,
        EXECUTIONS / (PAYLOAD + 2),
        "one worker reset per session window"
    );
    assert_sessions_intact(&events, (PAYLOAD + 2) as usize, EXECUTIONS as usize);
}
