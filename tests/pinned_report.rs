//! Pinned campaign reports: regression values captured *before* the sparse
//! trace-recording / zero-allocation refactor (PR 2).
//!
//! The refactor (dirty-slot trace maps, reused trace context, cached linear
//! layouts, `Arc` donor sharing, seed-pool moves) is required to be
//! behaviour-preserving: for a fixed (target, strategy, seed, budget) the
//! campaign must produce bit-identical coverage counts, outcome tallies and
//! bug lists. These constants were captured from the dense, allocating
//! implementation; any drift here means an optimisation changed observable
//! fuzzing behaviour, not just its speed.

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

/// The deterministic fields of a `CampaignReport`, in one comparable bundle.
#[derive(Debug, PartialEq, Eq)]
struct PinnedReport {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    unique_bugs: usize,
    valuable_seeds: usize,
    corpus_size: usize,
}

fn run_config(target: TargetId, config: CampaignConfig) -> PinnedReport {
    let report = Campaign::new(target.create(), config).run();
    let last = report
        .series
        .points()
        .last()
        .expect("series has at least the final sample");
    PinnedReport {
        final_paths: report.final_paths(),
        final_edges: last.edges,
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        unique_bugs: report.unique_bugs(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
    }
}

fn run(target: TargetId, strategy: StrategyKind, seed: u64, executions: u64) -> PinnedReport {
    let config = CampaignConfig::new(strategy)
        .executions(executions)
        .rng_seed(seed)
        .sample_interval(200);
    run_config(target, config)
}

#[test]
fn modbus_peachstar_report_is_pinned() {
    assert_eq!(
        run(TargetId::Modbus, StrategyKind::PeachStar, 3, 3_000),
        PinnedReport {
            final_paths: 76,
            final_edges: 103,
            responses: 1_427,
            protocol_errors: 1_568,
            fault_hits: 5,
            unique_bugs: 2,
            valuable_seeds: 73,
            corpus_size: 196,
        }
    );
}

#[test]
fn modbus_peach_baseline_report_is_pinned() {
    assert_eq!(
        run(TargetId::Modbus, StrategyKind::Peach, 3, 3_000),
        PinnedReport {
            final_paths: 89,
            final_edges: 125,
            responses: 953,
            protocol_errors: 2_040,
            fault_hits: 7,
            unique_bugs: 2,
            valuable_seeds: 89,
            corpus_size: 0,
        }
    );
}

#[test]
fn batched_modbus_peach_baseline_matches_the_pinned_report() {
    // The batched driver (PR 5) against the constants captured from the
    // *pre-PR-2 dense* implementation, deliberately un-recaptured: batching
    // amortises dispatch but may not move a single count of the
    // feedback-free baseline, whatever the batch size.
    for batch in [64, 250, 4_000] {
        let config = CampaignConfig::new(StrategyKind::Peach)
            .executions(3_000)
            .rng_seed(3)
            .sample_interval(200)
            .batch(batch);
        assert_eq!(
            run_config(TargetId::Modbus, config),
            PinnedReport {
                final_paths: 89,
                final_edges: 125,
                responses: 953,
                protocol_errors: 2_040,
                fault_hits: 7,
                unique_bugs: 2,
                valuable_seeds: 89,
                corpus_size: 0,
            },
            "batch {batch}"
        );
    }
}

#[test]
fn summary_only_batched_modbus_peach_matches_the_pinned_report() {
    // Summary-only decoding (PR 8) against the same pre-PR-2 constants,
    // again deliberately un-recaptured: skipping response assembly and
    // error-string formatting may not move a single count either.
    for batch in [64, 250] {
        let config = CampaignConfig::new(StrategyKind::Peach)
            .executions(3_000)
            .rng_seed(3)
            .sample_interval(200)
            .batch(batch)
            .summary_only();
        assert_eq!(
            run_config(TargetId::Modbus, config),
            PinnedReport {
                final_paths: 89,
                final_edges: 125,
                responses: 953,
                protocol_errors: 2_040,
                fault_hits: 7,
                unique_bugs: 2,
                valuable_seeds: 89,
                corpus_size: 0,
            },
            "batch {batch}"
        );
    }
}

#[test]
fn lib60870_peachstar_report_is_pinned() {
    assert_eq!(
        run(TargetId::Lib60870, StrategyKind::PeachStar, 77, 2_000),
        PinnedReport {
            final_paths: 31,
            final_edges: 50,
            responses: 731,
            protocol_errors: 1_250,
            fault_hits: 19,
            unique_bugs: 2,
            valuable_seeds: 30,
            corpus_size: 223,
        }
    );
}

#[test]
fn iec104_peachstar_report_is_pinned() {
    assert_eq!(
        run(TargetId::Iec104, StrategyKind::PeachStar, 5, 2_500),
        PinnedReport {
            final_paths: 35,
            final_edges: 51,
            responses: 849,
            protocol_errors: 1_651,
            fault_hits: 0,
            unique_bugs: 0,
            valuable_seeds: 32,
            corpus_size: 192,
        }
    );
}
