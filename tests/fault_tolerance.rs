//! Fault tolerance: a campaign must survive a misbehaving target — panics,
//! hangs, garbage responses — without losing budget, determinism, or
//! resumability.
//!
//! Every test drives the real campaign machinery against [`ChaosTarget`],
//! the deterministic seeded failure injector: the same packet bytes always
//! trigger the same injected failure, so chaos campaigns are as reproducible
//! as clean ones. The matrix pins four guarantees:
//!
//! 1. **Budget completion** — injected panics/garbage never eat executions,
//!    across strategies × batch sizes × sessions × sharded workers.
//! 2. **Dedup** — injected panic sites surface as unique bugs, one record
//!    per site, alongside the target's native bugs.
//! 3. **Worker invariance under chaos** — failed-window detection and
//!    barrier re-execution are content-keyed, so the worker count still
//!    cannot leak into a sharded report.
//! 4. **Composition** — checkpoint/resume reproduces a chaos campaign bit
//!    for bit, and a crash artifact cut from the resumed report still
//!    replays.

use peachstar::artifact::CrashArtifact;
use peachstar::campaign::{Campaign, CampaignConfig, SessionConfig, ShardConfig, ShardedCampaign};
use peachstar::strategy::StrategyKind;
use peachstar::CampaignReport;
use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
use peachstar_protocols::{FaultKind, Target, TargetId};
use std::collections::BTreeSet;

/// The deterministic fields of a report, in one comparable bundle
/// (everything except wall-clock timing).
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

/// Panic + garbage injection (no hangs — those need the watchdog and get
/// their own test), aggressive enough to fire many times per campaign.
fn chaos() -> ChaosConfig {
    ChaosConfig::new(11)
        .panic_every(23)
        .hang_every(0)
        .garbage_every(13)
}

fn chaos_target(target: TargetId) -> Box<dyn Target> {
    Box::new(ChaosTarget::new(target.create_send(), chaos()))
}

fn config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(1_000)
        .rng_seed(seed)
        .sample_interval(100)
        .reset_interval(250)
}

/// Asserts the two core chaos guarantees on a finished report: the full
/// budget ran, injected panics surfaced, and the bug list has one record
/// per site.
fn assert_survived(report: &CampaignReport, label: &str) {
    assert_eq!(report.executions, 1_000, "{label}: budget must complete");
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.fault.kind == FaultKind::Panic),
        "{label}: injected panics must surface as bugs"
    );
    let sites: BTreeSet<&'static str> = report.bugs.iter().map(|b| b.fault.site).collect();
    assert_eq!(
        sites.len(),
        report.bugs.len(),
        "{label}: bugs deduplicate by site"
    );
}

#[test]
fn chaos_campaigns_complete_budget_across_the_configuration_matrix() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let base = config(strategy, 7);
        let variants: [(&str, CampaignConfig); 4] = [
            ("sequential", base),
            ("batched", base.batch(64)),
            ("sessions", base.sessions(SessionConfig::new(6))),
            ("batched sessions", base.sessions(SessionConfig::new(6)).batch(32)),
        ];
        for (label, cfg) in variants {
            let report = Campaign::new(chaos_target(TargetId::Modbus), cfg).run();
            assert_survived(&report, &format!("{strategy} {label}"));
        }
        for workers in [1, 2, 4] {
            let report = ShardedCampaign::new(
                chaos_target(TargetId::Iec104),
                base,
                ShardConfig::with_workers(workers).sync_windows(4),
            )
            .run();
            assert_survived(&report, &format!("{strategy} sharded x{workers}"));
        }
    }
}

#[test]
fn injected_sites_dedup_against_native_bugs() {
    // Three injected panic sites on top of libmodbus's native bug sites:
    // every record is unique, and the injected ones are bounded by the
    // configured site count.
    let report = Campaign::new(chaos_target(TargetId::Modbus), config(StrategyKind::Peach, 3))
        .run();
    assert_survived(&report, "dedup");
    let injected: Vec<&'static str> = report
        .bugs
        .iter()
        .filter(|b| b.fault.kind == FaultKind::Panic)
        .map(|b| b.fault.site)
        .collect();
    assert!(
        injected.len() <= 3,
        "chaos() injects at most 3 distinct panic sites, got {injected:?}"
    );
    assert!(
        injected.iter().all(|site| site.starts_with("chaos:")),
        "injected sites are labelled: {injected:?}"
    );
}

#[test]
fn hang_watchdog_preserves_the_budget_under_blocking_hangs() {
    // Hang-only chaos: every 41st content hash blocks for 200ms. With a
    // 25ms deadline the watchdog abandons the stuck call, reports a hang
    // fault, and the campaign still completes its full budget.
    let chaos = ChaosConfig::new(5)
        .panic_every(0)
        .garbage_every(0)
        .hang_every(41)
        .hang_ms(200);
    let target = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
    let cfg = config(StrategyKind::Peach, 9).exec_timeout_ms(25);
    let report = Campaign::new(target, cfg).run();
    assert_eq!(report.executions, 1_000, "hangs must not eat budget");
    assert!(
        report.bugs.iter().any(|b| b.fault.kind == FaultKind::Hang),
        "abandoned executions surface as hang faults"
    );
}

#[test]
fn worker_count_never_changes_a_chaos_report() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Lib60870, 77)] {
            let run = |workers: usize| {
                deterministic(
                    &ShardedCampaign::new(
                        chaos_target(target),
                        config(strategy, seed),
                        ShardConfig::with_workers(workers).sync_windows(4),
                    )
                    .run(),
                )
            };
            let one = run(1);
            for workers in [2, 4] {
                assert_eq!(
                    one,
                    run(workers),
                    "{strategy} chaos on {target} seed {seed}: {workers} workers diverged"
                );
            }
        }
    }
}

#[test]
fn resume_composes_with_chaos_and_artifacts() {
    // Interrupt a chaos campaign mid-flight, resume it, and require the
    // resumed report to equal the uninterrupted one — then cut a reproducer
    // bundle from the *resumed* report and replay it.
    let cfg = config(StrategyKind::PeachStar, 21);
    let complete = Campaign::new(chaos_target(TargetId::Modbus), cfg).run();
    assert_survived(&complete, "uninterrupted chaos");

    let boundaries = Campaign::new(chaos_target(TargetId::Modbus), cfg).window_boundaries();
    let boundary = boundaries[boundaries.len() / 2];
    let snapshot = Campaign::new(chaos_target(TargetId::Modbus), cfg)
        .run_to_boundary(boundary)
        .expect("runs to the boundary");
    let resumed = Campaign::new(chaos_target(TargetId::Modbus), cfg)
        .resume(&snapshot)
        .expect("resumes");
    assert_eq!(
        deterministic(&complete),
        deterministic(&resumed),
        "chaos resume at execution {boundary} diverged"
    );

    let bug = resumed.bugs.first().expect("chaos campaign finds bugs");
    let artifact = CrashArtifact::from_bug(TargetId::Modbus, &cfg, None, Some(chaos()), bug);
    let dir = std::env::temp_dir().join(format!(
        "peachstar-fault-tolerance-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let path = artifact.write_atomic(&dir).expect("bundle writes");
    let decoded = CrashArtifact::read_from(&path).expect("bundle reads back");
    assert_eq!(decoded, artifact, "bundle round-trips");
    decoded.replay().expect("resumed-report bug replays");
    std::fs::remove_dir_all(&dir).ok();
}
