//! Fault tolerance: a campaign must survive a misbehaving target — panics,
//! hangs, garbage responses — without losing budget, determinism, or
//! resumability.
//!
//! Every test drives the real campaign machinery against [`ChaosTarget`],
//! the deterministic seeded failure injector: the same packet bytes always
//! trigger the same injected failure, so chaos campaigns are as reproducible
//! as clean ones. The matrix pins four guarantees:
//!
//! 1. **Budget completion** — injected panics/garbage never eat executions,
//!    across strategies × batch sizes × sessions × sharded workers.
//! 2. **Dedup** — injected panic sites surface as unique bugs, one record
//!    per site, alongside the target's native bugs.
//! 3. **Worker invariance under chaos** — failed-window detection and
//!    barrier re-execution are content-keyed, so the worker count still
//!    cannot leak into a sharded report.
//! 4. **Composition** — checkpoint/resume reproduces a chaos campaign bit
//!    for bit, and a crash artifact cut from the resumed report still
//!    replays.
//! 5. **Transport independence** — the same failures behind the framed-TCP
//!    transport produce the same deduplicated bugs: server-side panics are
//!    contained into the same fault records, a stalled connection trips the
//!    same watchdog, a dead socket is contained for target rebuild, and an
//!    artifact recorded under TCP replays in-process.

use peachstar::artifact::CrashArtifact;
use peachstar::campaign::{
    Campaign, CampaignConfig, ConnectionCampaign, ConnectionConfig, SessionConfig, ShardConfig,
    ShardedCampaign, TransportMode,
};
use peachstar::engine::transport::FramedTcpTarget;
use peachstar::strategy::StrategyKind;
use peachstar::CampaignReport;
use peachstar_coverage::TraceContext;
use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
use peachstar_protocols::containment::contained;
use peachstar_protocols::{FaultKind, Target, TargetId};
use std::collections::BTreeSet;
use std::net::TcpListener;

/// The deterministic fields of a report, in one comparable bundle
/// (everything except wall-clock timing).
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

/// Panic + garbage injection (no hangs — those need the watchdog and get
/// their own test), aggressive enough to fire many times per campaign.
fn chaos() -> ChaosConfig {
    ChaosConfig::new(11)
        .panic_every(23)
        .hang_every(0)
        .garbage_every(13)
}

fn chaos_target(target: TargetId) -> Box<dyn Target> {
    Box::new(ChaosTarget::new(target.create_send(), chaos()))
}

fn config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(1_000)
        .rng_seed(seed)
        .sample_interval(100)
        .reset_interval(250)
}

/// Asserts the two core chaos guarantees on a finished report: the full
/// budget ran, injected panics surfaced, and the bug list has one record
/// per site.
fn assert_survived(report: &CampaignReport, label: &str) {
    assert_eq!(report.executions, 1_000, "{label}: budget must complete");
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.fault.kind == FaultKind::Panic),
        "{label}: injected panics must surface as bugs"
    );
    let sites: BTreeSet<&'static str> = report.bugs.iter().map(|b| b.fault.site).collect();
    assert_eq!(
        sites.len(),
        report.bugs.len(),
        "{label}: bugs deduplicate by site"
    );
}

#[test]
fn chaos_campaigns_complete_budget_across_the_configuration_matrix() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let base = config(strategy, 7);
        let variants: [(&str, CampaignConfig); 4] = [
            ("sequential", base),
            ("batched", base.batch(64)),
            ("sessions", base.sessions(SessionConfig::new(6))),
            ("batched sessions", base.sessions(SessionConfig::new(6)).batch(32)),
        ];
        for (label, cfg) in variants {
            let report = Campaign::new(chaos_target(TargetId::Modbus), cfg).run();
            assert_survived(&report, &format!("{strategy} {label}"));
        }
        for workers in [1, 2, 4] {
            let report = ShardedCampaign::new(
                chaos_target(TargetId::Iec104),
                base,
                ShardConfig::with_workers(workers).sync_windows(4),
            )
            .run();
            assert_survived(&report, &format!("{strategy} sharded x{workers}"));
        }
    }
}

#[test]
fn injected_sites_dedup_against_native_bugs() {
    // Three injected panic sites on top of libmodbus's native bug sites:
    // every record is unique, and the injected ones are bounded by the
    // configured site count.
    let report = Campaign::new(chaos_target(TargetId::Modbus), config(StrategyKind::Peach, 3))
        .run();
    assert_survived(&report, "dedup");
    let injected: Vec<&'static str> = report
        .bugs
        .iter()
        .filter(|b| b.fault.kind == FaultKind::Panic)
        .map(|b| b.fault.site)
        .collect();
    assert!(
        injected.len() <= 3,
        "chaos() injects at most 3 distinct panic sites, got {injected:?}"
    );
    assert!(
        injected.iter().all(|site| site.starts_with("chaos:")),
        "injected sites are labelled: {injected:?}"
    );
}

#[test]
fn hang_watchdog_preserves_the_budget_under_blocking_hangs() {
    // Hang-only chaos: every 41st content hash blocks for 200ms. With a
    // 25ms deadline the watchdog abandons the stuck call, reports a hang
    // fault, and the campaign still completes its full budget.
    let chaos = ChaosConfig::new(5)
        .panic_every(0)
        .garbage_every(0)
        .hang_every(41)
        .hang_ms(200);
    let target = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
    let cfg = config(StrategyKind::Peach, 9).exec_timeout_ms(25);
    let report = Campaign::new(target, cfg).run();
    assert_eq!(report.executions, 1_000, "hangs must not eat budget");
    assert!(
        report.bugs.iter().any(|b| b.fault.kind == FaultKind::Hang),
        "abandoned executions surface as hang faults"
    );
}

#[test]
fn worker_count_never_changes_a_chaos_report() {
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Lib60870, 77)] {
            let run = |workers: usize| {
                deterministic(
                    &ShardedCampaign::new(
                        chaos_target(target),
                        config(strategy, seed),
                        ShardConfig::with_workers(workers).sync_windows(4),
                    )
                    .run(),
                )
            };
            let one = run(1);
            for workers in [2, 4] {
                assert_eq!(
                    one,
                    run(workers),
                    "{strategy} chaos on {target} seed {seed}: {workers} workers diverged"
                );
            }
        }
    }
}

#[test]
fn framed_tcp_chaos_campaign_matches_in_process() {
    // Server-side injected panics are contained by the socket server with
    // the executor's own sequence and cross the wire as fault records with
    // re-interned sites, so the chaos report is bit-identical to in-process
    // — panics deduplicate to the same bugs at the same executions.
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let cfg = config(strategy, 7);
        let in_process = Campaign::new(chaos_target(TargetId::Modbus), cfg).run();
        assert_survived(&in_process, &format!("{strategy} in-process"));
        let over_tcp = Campaign::new(
            chaos_target(TargetId::Modbus),
            cfg.transport(TransportMode::FramedTcp),
        )
        .run();
        assert_eq!(
            deterministic(&in_process),
            deterministic(&over_tcp),
            "{strategy}: chaos behind framed TCP diverged from in-process"
        );
    }
}

#[test]
fn connection_driver_chaos_matches_the_in_process_sharded_engine() {
    // The same guarantee through the concurrent-connection driver: N live
    // connections with server-side chaos reduce to the in-process sharded
    // report at the merge barrier.
    let cfg = config(StrategyKind::PeachStar, 77);
    let in_process = deterministic(
        &ShardedCampaign::new(
            chaos_target(TargetId::Lib60870),
            cfg,
            ShardConfig::with_workers(2).sync_windows(4),
        )
        .run(),
    );
    for connections in [1, 3] {
        let live = deterministic(
            &ConnectionCampaign::new(
                chaos_target(TargetId::Lib60870),
                cfg,
                ConnectionConfig::with_connections(connections).sync_windows(4),
            )
            .run(),
        );
        assert_eq!(
            in_process, live,
            "chaos over {connections} live connections diverged"
        );
    }
}

#[test]
fn framed_tcp_hangs_trip_the_same_watchdog_bugs() {
    // A hang injected server-side stalls the connection: the client blocks
    // in the wire read, the executor's watchdog abandons the stranded
    // worker (and with it the connection), and the replacement worker's
    // fresh target is a fresh connection. The deduplicated bug list —
    // content-keyed panic sites plus the constant hang site — matches
    // in-process exactly; execution indices are timing-free because
    // injection is content-hashed.
    let chaos = ChaosConfig::new(5)
        .panic_every(0)
        .garbage_every(0)
        .hang_every(41)
        .hang_ms(200);
    let sites = |transport: TransportMode| {
        let target = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
        let cfg = config(StrategyKind::Peach, 9)
            .exec_timeout_ms(25)
            .transport(transport);
        let report = Campaign::new(target, cfg).run();
        assert_eq!(report.executions, 1_000, "{transport:?}: hangs must not eat budget");
        assert!(
            report.bugs.iter().any(|b| b.fault.kind == FaultKind::Hang),
            "{transport:?}: abandoned executions surface as hang faults"
        );
        report
            .bugs
            .iter()
            .map(|b| (b.fault.kind, b.fault.site))
            .collect::<BTreeSet<_>>()
    };
    assert_eq!(
        sites(TransportMode::InProcess),
        sites(TransportMode::FramedTcp),
        "watchdog bugs behind framed TCP diverged from in-process"
    );
}

#[test]
fn a_dead_socket_is_contained_for_target_rebuild() {
    // When the server side of a connection dies, the client-side
    // FramedTcpTarget panics with a transport-labelled message instead of
    // wedging. The executor contains exactly such panics and rebuilds the
    // target via clone_fresh — which for a framed-TCP target means a fresh
    // connection.
    let doomed = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = doomed.local_addr().expect("local addr");
    // The connection lands in the unaccepted backlog; dropping the listener
    // resets it, so the next exchange hits a dead socket.
    let mut target = FramedTcpTarget::connect(TargetId::Modbus.create_send(), addr);
    drop(doomed);
    let mut ctx = TraceContext::new();
    let mut attempt = || {
        let outcome = target.process(&[0u8; 8], &mut ctx);
        drop(outcome);
    };
    // The first exchange may still see buffered success; the dead socket
    // surfaces within a couple of round-trips.
    let message = (0..8)
        .find_map(|_| contained(&mut attempt).err())
        .expect("a dead socket must panic, not wedge");
    assert!(
        message.contains("framed-tcp transport"),
        "the panic names the transport so rebuilds are diagnosable: {message}"
    );
}

#[test]
fn tcp_recorded_artifact_replays_in_process() {
    // A reproducer bundle cut from a framed-TCP chaos campaign normalises
    // the transport away: replay is always in-process, and reproduces the
    // same fault because the wire never changed campaign semantics.
    let cfg = config(StrategyKind::Peach, 3).transport(TransportMode::FramedTcp);
    let report = Campaign::new(chaos_target(TargetId::Modbus), cfg).run();
    assert_survived(&report, "tcp chaos");
    let bug = report.bugs.first().expect("chaos campaign finds bugs");
    let artifact = CrashArtifact::from_bug(TargetId::Modbus, &cfg, None, Some(chaos()), bug);
    assert_eq!(
        artifact.config.transport,
        TransportMode::InProcess,
        "artifacts never pin the recording transport"
    );
    let dir = std::env::temp_dir().join(format!(
        "peachstar-tcp-artifact-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let path = artifact.write_atomic(&dir).expect("bundle writes");
    let decoded = CrashArtifact::read_from(&path).expect("bundle reads back");
    assert_eq!(decoded, artifact, "bundle round-trips");
    decoded.replay().expect("TCP-recorded bug replays in-process");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_composes_with_chaos_and_artifacts() {
    // Interrupt a chaos campaign mid-flight, resume it, and require the
    // resumed report to equal the uninterrupted one — then cut a reproducer
    // bundle from the *resumed* report and replay it.
    let cfg = config(StrategyKind::PeachStar, 21);
    let complete = Campaign::new(chaos_target(TargetId::Modbus), cfg).run();
    assert_survived(&complete, "uninterrupted chaos");

    let boundaries = Campaign::new(chaos_target(TargetId::Modbus), cfg).window_boundaries();
    let boundary = boundaries[boundaries.len() / 2];
    let snapshot = Campaign::new(chaos_target(TargetId::Modbus), cfg)
        .run_to_boundary(boundary)
        .expect("runs to the boundary");
    let resumed = Campaign::new(chaos_target(TargetId::Modbus), cfg)
        .resume(&snapshot)
        .expect("resumes");
    assert_eq!(
        deterministic(&complete),
        deterministic(&resumed),
        "chaos resume at execution {boundary} diverged"
    );

    let bug = resumed.bugs.first().expect("chaos campaign finds bugs");
    let artifact = CrashArtifact::from_bug(TargetId::Modbus, &cfg, None, Some(chaos()), bug);
    let dir = std::env::temp_dir().join(format!(
        "peachstar-fault-tolerance-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let path = artifact.write_atomic(&dir).expect("bundle writes");
    let decoded = CrashArtifact::read_from(&path).expect("bundle reads back");
    assert_eq!(decoded, artifact, "bundle round-trips");
    decoded.replay().expect("resumed-report bug replays");
    std::fs::remove_dir_all(&dir).ok();
}
