//! Algebra of the two merge operations behind shared-corpus and sharded
//! campaigns: [`PuzzleCorpus::merge`] and [`CoverageMap::absorb`].
//!
//! The laws pinned here are what makes merging safe to reorder and to
//! repeat:
//!
//! * corpus merge is **commutative on contents** (below per-rule capacity)
//!   and **fully idempotent** — `a.merge(&a)` changes nothing, counters
//!   included;
//! * map absorb is **commutative and idempotent on coverage content**
//!   (slots, masks, paths); `executions` is deliberately *additive* — it
//!   counts work done, not states reached — so only coverage is compared
//!   under self-absorb;
//! * `clear()` resets *all* statistics counters on both structures, so a
//!   recycled corpus or map can never leak stale numbers into a report;
//! * a shared-corpus repetition run covers at least as much as isolated
//!   repetitions at the same budget.

use std::collections::{BTreeMap, BTreeSet};

use peachstar::campaign::{run_repetitions, run_repetitions_shared, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar::PuzzleCorpus;
use peachstar_coverage::{CoverageMap, PathId};
use peachstar_datamodel::{Puzzle, RuleId};
use peachstar_protocols::TargetId;

fn puzzle(rule: u64, content: &[u8]) -> Puzzle {
    Puzzle::new(RuleId::from_raw(rule), "test", content.to_vec())
}

/// Order-free view of a corpus: rule → set of donor byte strings.
fn contents(corpus: &PuzzleCorpus) -> BTreeMap<u64, BTreeSet<Vec<u8>>> {
    let mut view = BTreeMap::new();
    for (rule, donors) in corpus.iter_rules() {
        let entry: &mut BTreeSet<Vec<u8>> = view.entry(rule.raw()).or_default();
        for donor in donors {
            entry.insert(donor.to_vec());
        }
    }
    view
}

fn corpus_a() -> PuzzleCorpus {
    let mut corpus = PuzzleCorpus::new();
    corpus.insert_all(vec![
        puzzle(1, &[0xAA]),
        puzzle(1, &[0xAB]),
        puzzle(2, &[0x01, 0x02]),
        puzzle(7, &[0xFF; 4]),
    ]);
    corpus
}

fn corpus_b() -> PuzzleCorpus {
    let mut corpus = PuzzleCorpus::new();
    corpus.insert_all(vec![
        puzzle(1, &[0xAB]), // shared with a
        puzzle(1, &[0xAC]),
        puzzle(3, &[0x99]),
        puzzle(7, &[0xFF; 4]), // shared with a
        puzzle(7, &[0x00]),
    ]);
    corpus
}

#[test]
fn corpus_merge_is_commutative_on_contents() {
    // Below per-rule capacity no eviction happens, so merge order cannot
    // change which donors survive — only the order they are stored in.
    let mut ab = corpus_a();
    ab.merge(&corpus_b());
    let mut ba = corpus_b();
    ba.merge(&corpus_a());
    assert_eq!(contents(&ab), contents(&ba));
    assert_eq!(ab.len(), ba.len());
    assert_eq!(ab.rule_count(), ba.rule_count());
}

#[test]
fn corpus_merge_is_fully_idempotent() {
    let mut merged = corpus_a();
    merged.merge(&corpus_b());
    let before = merged.clone();

    // Merging the same donors again is a complete no-op: contents AND the
    // inserted/rejected counters (already-present donors are skipped
    // silently, not counted as failed inserts).
    assert_eq!(merged.merge(&corpus_b()), 0);
    assert_eq!(merged, before);
    let self_copy = merged.clone();
    assert_eq!(merged.merge(&self_copy), 0);
    assert_eq!(merged, before);
}

#[test]
fn corpus_merge_preserves_dedup() {
    let mut merged = corpus_a();
    let added = merged.merge(&corpus_b());
    // Of b's five donors, two are already in a.
    assert_eq!(added, 3);
    assert_eq!(merged.len(), corpus_a().len() + 3);
    // Every donor set is still duplicate-free.
    for (_, donors) in merged.iter_rules() {
        let distinct: BTreeSet<&[u8]> = donors.iter().map(AsRef::as_ref).collect();
        assert_eq!(distinct.len(), donors.len());
    }
    // And inserted moved by exactly the novel donors.
    assert_eq!(merged.inserted(), corpus_a().inserted() + 3);
}

#[test]
fn corpus_clear_resets_every_counter() {
    let mut corpus = corpus_a();
    corpus.insert(puzzle(1, &[0xAA])); // duplicate → bumps rejected counter
    assert!(corpus.inserted() > 0);
    assert!(corpus.rejected_duplicates() > 0);
    corpus.clear();
    assert!(corpus.is_empty());
    assert_eq!(corpus.len(), 0);
    assert_eq!(corpus.rule_count(), 0);
    assert_eq!(corpus.inserted(), 0);
    assert_eq!(corpus.rejected_duplicates(), 0);
    // A cleared corpus behaves like a fresh one.
    assert!(corpus.insert(puzzle(1, &[0xAA])));
    assert_eq!(corpus.inserted(), 1);
}

fn map_a() -> CoverageMap {
    CoverageMap::from_parts(
        [(0, 0b0001), (5, 0b0110), (100, 0b1000)],
        [PathId::new(1), PathId::new(2)],
        40,
    )
}

fn map_b() -> CoverageMap {
    CoverageMap::from_parts(
        [(5, 0b0011), (100, 0b1000), (4_000, 0b0001)],
        [PathId::new(2), PathId::new(3)],
        60,
    )
}

/// Order-free view of a map's coverage content (slots+masks and paths, not
/// the execution tally).
fn coverage(map: &CoverageMap) -> (BTreeMap<usize, u8>, BTreeSet<u64>) {
    (
        map.covered_slots().collect(),
        map.path_ids().map(PathId::raw).collect(),
    )
}

#[test]
fn map_absorb_is_commutative() {
    let mut ab = map_a();
    ab.absorb(&map_b());
    let mut ba = map_b();
    ba.absorb(&map_a());
    assert_eq!(coverage(&ab), coverage(&ba));
    assert_eq!(ab.edges_covered(), ba.edges_covered());
    assert_eq!(ab.paths_covered(), ba.paths_covered());
    // Executions sum, and addition commutes.
    assert_eq!(ab.executions(), 100);
    assert_eq!(ba.executions(), 100);
}

#[test]
fn map_absorb_is_idempotent_on_coverage() {
    let mut map = map_a();
    map.absorb(&map_b());
    let (slots_before, paths_before) = coverage(&map);
    let edges_before = map.edges_covered();

    let self_copy = map.clone();
    map.absorb(&self_copy);
    assert_eq!(coverage(&map), (slots_before, paths_before));
    assert_eq!(map.edges_covered(), edges_before);
    // Executions is additive by design: it counts work performed, so
    // self-absorb doubles it rather than fixing it.
    assert_eq!(map.executions(), 200);
}

#[test]
fn map_absorb_merges_masks_not_just_slots() {
    let mut map = map_a();
    map.absorb(&map_b());
    let slots: BTreeMap<usize, u8> = map.covered_slots().collect();
    // Slot 5 carries the union of both hit-bucket masks.
    assert_eq!(slots[&5], 0b0111);
    assert_eq!(slots[&0], 0b0001);
    assert_eq!(slots[&4_000], 0b0001);
    assert_eq!(map.edges_covered(), 4);
    assert_eq!(map.paths_covered(), 3);
}

#[test]
fn map_clear_resets_every_counter() {
    let mut map = map_a();
    map.absorb(&map_b());
    map.clear();
    assert_eq!(map.edges_covered(), 0);
    assert_eq!(map.paths_covered(), 0);
    assert_eq!(map.executions(), 0);
    assert_eq!(map.covered_slots().count(), 0);
    assert_eq!(map.path_ids().count(), 0);
    // A cleared map accumulates from scratch, exactly like a fresh one.
    map.absorb(&map_a());
    assert_eq!(coverage(&map), coverage(&map_a()));
    assert_eq!(map.executions(), map_a().executions());
}

#[test]
fn shared_corpus_repetitions_cover_at_least_isolated_ones() {
    // Same budget, same seeds: the only difference is that shared-corpus
    // repetitions start from the previous repetition's puzzle corpus. The
    // pooled knowledge must never lose coverage, and the comparison is
    // fully deterministic (everything is seeded).
    let config = CampaignConfig::new(StrategyKind::PeachStar)
        .executions(1_500)
        .rng_seed(3)
        .sample_interval(150)
        .reset_interval(250);
    let repetitions = 3;
    let (isolated_series, isolated) =
        run_repetitions(|| TargetId::Modbus.create(), config, repetitions);
    let (shared_series, shared) =
        run_repetitions_shared(|| TargetId::Modbus.create(), config, repetitions);

    assert_eq!(isolated.len(), repetitions as usize);
    assert_eq!(shared.len(), repetitions as usize);

    let final_edges =
        |series: &peachstar::CoverageSeries| series.points().last().map_or(0, |p| p.edges);
    assert!(
        final_edges(&shared_series) >= final_edges(&isolated_series),
        "shared corpus lost coverage: {} < {}",
        final_edges(&shared_series),
        final_edges(&isolated_series)
    );

    // The corpus itself only ever grows across shared repetitions.
    let sizes: Vec<usize> = shared.iter().map(|report| report.corpus_size).collect();
    assert!(
        sizes.windows(2).all(|pair| pair[0] <= pair[1]),
        "shared corpus shrank across repetitions: {sizes:?}"
    );
    // And the first repetition is identical either way — sharing only
    // changes what later repetitions start from.
    assert_eq!(shared[0].final_paths(), isolated[0].final_paths());
    assert_eq!(shared[0].responses, isolated[0].responses);
}
