//! Transport equivalence: the wire between the executor and the target is
//! an operational detail, never part of campaign semantics.
//!
//! Three guarantees are pinned here, property-style over targets × seeds:
//!
//! 1. **Bit-identity** — a campaign over the framed-TCP transport produces
//!    the same report as the in-process campaign, for all six protocol
//!    targets and both strategies. The transport relays `(outcome, trace)`
//!    pairs verbatim and the server executes packets with exactly the
//!    executor's containment/reset sequence, so nothing can diverge.
//! 2. **Connection-count invariance** — `--connections {1,2,4}` produce
//!    bit-identical reports at the merge barrier, mirroring
//!    `tests/shard_determinism.rs`: the connection driver *is* the sharded
//!    engine behind the wire, so worker invariance carries over unchanged.
//! 3. **Cross-transport resume** — a checkpoint recorded under TCP resumes
//!    in-process bit-exactly (and vice versa): the snapshot fingerprint
//!    deliberately excludes the transport and the connection count.

use peachstar::campaign::{
    Campaign, CampaignConfig, ConnectionCampaign, ConnectionConfig, SessionConfig, ShardConfig,
    ShardedCampaign, TransportMode,
};
use peachstar::strategy::StrategyKind;
use peachstar::CampaignReport;
use peachstar_protocols::TargetId;

/// The deterministic fields of a report, in one comparable bundle
/// (everything except wall time).
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

fn config(strategy: StrategyKind, seed: u64) -> CampaignConfig {
    CampaignConfig::new(strategy)
        .executions(1_200)
        .rng_seed(seed)
        .sample_interval(150)
        .reset_interval(250)
}

#[test]
fn framed_tcp_campaign_equals_in_process_for_every_target() {
    // Guarantee 1 over all six targets × both strategies: the sequential
    // campaign's report is a function of (target, strategy, seed, budget),
    // never of the transport under it.
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (index, target) in TargetId::ALL.into_iter().enumerate() {
            let seed = 11 + index as u64;
            let in_process =
                deterministic(&Campaign::new(target.create(), config(strategy, seed)).run());
            let over_tcp = deterministic(
                &Campaign::new(
                    target.create(),
                    config(strategy, seed).transport(TransportMode::FramedTcp),
                )
                .run(),
            );
            assert_eq!(
                in_process, over_tcp,
                "{strategy} on {target:?} seed {seed}: TCP transport diverged"
            );
        }
    }
}

#[test]
fn framed_tcp_batched_campaign_equals_in_process() {
    // Batched windows ride the wire as one round-trip per window; summaries
    // and traces must reduce to the same records the per-packet loop makes.
    for summary_only in [false, true] {
        for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Iec61850, 21)] {
            let mut cfg = config(StrategyKind::PeachStar, seed).batch(128);
            if summary_only {
                cfg = cfg.summary_only();
            }
            let in_process = deterministic(&Campaign::new(target.create(), cfg).run());
            let over_tcp = deterministic(
                &Campaign::new(target.create(), cfg.transport(TransportMode::FramedTcp)).run(),
            );
            assert_eq!(
                in_process, over_tcp,
                "batched Peach* on {target:?} seed {seed} \
                 (summary_only={summary_only}): TCP transport diverged"
            );
        }
    }
}

#[test]
fn framed_tcp_session_campaign_equals_in_process() {
    // Session-shaped campaigns (handshake + payload + teardown windows)
    // cross the wire packet by packet with the same per-session resets.
    for (target, seed) in [(TargetId::Iec104, 5), (TargetId::Iccp, 42)] {
        let cfg = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(1_200)
            .rng_seed(seed)
            .sample_interval(150)
            .sessions(SessionConfig::new(6));
        let in_process = deterministic(&Campaign::new(target.create(), cfg).run());
        let over_tcp = deterministic(
            &Campaign::new(target.create(), cfg.transport(TransportMode::FramedTcp)).run(),
        );
        assert_eq!(
            in_process, over_tcp,
            "sessions on {target:?} seed {seed}: TCP transport diverged"
        );
    }
}

fn connections(target: TargetId, cfg: CampaignConfig, count: usize) -> Deterministic {
    let report = ConnectionCampaign::new(
        target.create(),
        cfg,
        ConnectionConfig::with_connections(count).sync_windows(4),
    )
    .run();
    deterministic(&report)
}

#[test]
fn connection_count_never_changes_the_report() {
    // Guarantee 2: one campaign multiplexing N live connections reduces
    // per-connection outcomes at the merge barrier in global execution
    // order, so N is invisible in the report — and the whole thing equals
    // the in-process sharded engine with the same barrier cadence.
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        for (target, seed) in [(TargetId::Modbus, 3), (TargetId::Lib60870, 77)] {
            let sharded_in_process = deterministic(
                &ShardedCampaign::new(
                    target.create(),
                    config(strategy, seed),
                    ShardConfig::with_workers(2).sync_windows(4),
                )
                .run(),
            );
            for count in [1, 2, 4] {
                let live = connections(target, config(strategy, seed), count);
                assert_eq!(
                    sharded_in_process, live,
                    "{strategy} on {target:?} seed {seed}: {count} connections diverged"
                );
            }
        }
    }
}

#[test]
fn tcp_recorded_checkpoint_resumes_in_process_bit_exactly() {
    // Guarantee 3, sequential engine: interrupt a framed-TCP campaign at a
    // window boundary, resume the snapshot with the in-process transport,
    // and land on the uninterrupted in-process report.
    let cfg = config(StrategyKind::PeachStar, 9);
    let complete = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg).run());

    let over_tcp = Campaign::new(
        TargetId::Modbus.create(),
        cfg.transport(TransportMode::FramedTcp),
    );
    let boundary = over_tcp
        .window_boundaries()
        .into_iter()
        .find(|&end| end >= 500)
        .expect("a boundary past 500");
    let snapshot = over_tcp.run_to_boundary(boundary).expect("tcp run to boundary");

    let resumed = Campaign::new(TargetId::Modbus.create(), cfg)
        .resume(&snapshot)
        .expect("in-process resume of a TCP-recorded snapshot");
    assert_eq!(
        complete,
        deterministic(&resumed),
        "cross-transport resume diverged from the uninterrupted run"
    );
}

#[test]
fn connection_checkpoint_resumes_on_any_worker_or_connection_count() {
    // Guarantee 3, parallel engine: a checkpoint recorded by a 4-connection
    // live-socket campaign resumes on the in-process sharded engine (any
    // worker count) and on a different connection count, all bit-exactly.
    let cfg = config(StrategyKind::PeachStar, 13);
    let shard = |workers: usize| {
        ShardedCampaign::new(
            TargetId::Iec104.create(),
            cfg,
            ShardConfig::with_workers(workers).sync_windows(4),
        )
    };
    let complete = deterministic(&shard(2).run());

    let recorder = ConnectionCampaign::new(
        TargetId::Iec104.create(),
        cfg,
        ConnectionConfig::with_connections(4).sync_windows(4),
    );
    let boundary = recorder
        .round_boundaries()
        .into_iter()
        .find(|&end| end >= 500)
        .expect("a merge barrier past 500");
    let snapshot = recorder
        .run_to_boundary(boundary)
        .expect("tcp run to merge barrier");

    for workers in [1, 3] {
        let resumed = shard(workers)
            .resume(&snapshot)
            .expect("in-process resume of a connection-recorded snapshot");
        assert_eq!(
            complete,
            deterministic(&resumed),
            "{workers} in-process workers diverged resuming a TCP checkpoint"
        );
    }
    let resumed = ConnectionCampaign::new(
        TargetId::Iec104.create(),
        cfg,
        ConnectionConfig::with_connections(2).sync_windows(4),
    )
    .resume(&snapshot)
    .expect("2-connection resume of a 4-connection snapshot");
    assert_eq!(
        complete,
        deterministic(&resumed),
        "a different connection count diverged resuming the checkpoint"
    );
}
