//! Service robustness matrix: the supervised service layer must never trade
//! determinism for resilience.
//!
//! * A graceful stop (direct or via the control socket) finishes the
//!   current window, writes a final checkpoint into the rotation, and the
//!   resumed campaign is bit-identical to the uninterrupted run.
//! * A SIGKILL at any moment leaves some suffix of the rotation intact;
//!   resuming from **every** rotation slot converges to the same final
//!   report, and a corrupted newest-prefix of the rotation is skipped until
//!   a valid slot restores (property-tested below).
//! * A flapping server — connections deterministically dropped mid-campaign
//!   by the server-side [`WireChaos`] injector — yields the same final
//!   report as a healthy wire at equal budget (journal replay).
//! * A connection that exhausts its reconnect budget degrades onto the
//!   surviving connections; the report still matches the healthy run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use peachstar::campaign::{
    Campaign, CampaignConfig, ConnectionCampaign, ConnectionConfig, ReconnectPolicy, ShardConfig,
    ShardedCampaign, TransportMode,
};
use peachstar::snapshot::{CampaignSnapshot, CheckpointConfig};
use peachstar::strategy::StrategyKind;
use peachstar::{CampaignReport, ControlServer, ServiceHooks};
use peachstar_protocols::{TargetId, WireChaos};

/// The deterministic fields of a report, in one comparable bundle
/// (everything except wall-clock timing).
#[derive(Debug, PartialEq, Eq)]
struct Deterministic {
    final_paths: usize,
    final_edges: usize,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
    bug_sites: Vec<&'static str>,
    bug_executions: Vec<u64>,
    valuable_seeds: usize,
    corpus_size: usize,
    series_paths: Vec<usize>,
}

fn deterministic(report: &CampaignReport) -> Deterministic {
    Deterministic {
        final_paths: report.final_paths(),
        final_edges: report.series.points().last().map_or(0, |p| p.edges),
        responses: report.responses,
        protocol_errors: report.protocol_errors,
        fault_hits: report.fault_hits,
        bug_sites: report.bugs.iter().map(|b| b.fault.site).collect(),
        bug_executions: report.bugs.iter().map(|b| b.first_execution).collect(),
        valuable_seeds: report.valuable_seeds,
        corpus_size: report.corpus_size,
        series_paths: report.series.points().iter().map(|p| p.paths).collect(),
    }
}

fn config(seed: u64) -> CampaignConfig {
    CampaignConfig::new(StrategyKind::PeachStar)
        .executions(1_000)
        .rng_seed(seed)
        .sample_interval(100)
        .reset_interval(250)
}

/// A unique scratch rotation directory, wiped clean before use.
fn scratch_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "peachstar-service-robustness-{tag}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The rotation slot files in `dir`, newest first.
fn rotation_slots(dir: &Path) -> Vec<PathBuf> {
    let mut slots: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("rotation dir readable")
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "peachsnp"))
        .collect();
    slots.sort_unstable();
    slots.reverse();
    slots
}

#[test]
fn graceful_stop_then_resume_latest_is_bit_identical_to_uninterrupted() {
    let cfg = config(3);
    let complete = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg).run());

    let dir = scratch_dir("graceful");
    let checkpoint = CheckpointConfig::new(dir.clone(), 1).rotation(3);

    // Request the stop up front: the service drains at the first window
    // boundary — deterministically — and writes a final checkpoint there.
    let hooks = ServiceHooks::new(cfg.executions);
    hooks.request_stop();
    let partial = Campaign::new(TargetId::Modbus.create(), cfg)
        .run_supervised(&checkpoint, &hooks)
        .expect("supervised run");
    assert!(
        partial.executions < cfg.executions,
        "the drain must stop before the budget: stopped at {}",
        partial.executions
    );
    assert_eq!(
        hooks.status().last_checkpoint,
        Some(partial.executions),
        "the final checkpoint covers the stop boundary"
    );

    // A fresh process recovers the newest rotation slot and resumes to the
    // identical report.
    let snapshot = CampaignSnapshot::resume_latest(&dir)
        .expect("rotation scan")
        .expect("the stop wrote a restorable checkpoint");
    assert_eq!(snapshot.completed, partial.executions);
    let resumed_hooks = ServiceHooks::new(cfg.executions);
    let resumed = Campaign::new(TargetId::Modbus.create(), cfg)
        .resume_supervised(&snapshot, &checkpoint, &resumed_hooks)
        .expect("supervised resume");
    assert_eq!(resumed.executions, cfg.executions);
    assert_eq!(complete, deterministic(&resumed), "graceful stop + resume diverged");
    assert_eq!(resumed_hooks.status().executions, cfg.executions);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_unstopped_supervised_run_is_observationally_free() {
    // Supervision (status publication + rolling checkpoints) must not
    // change the campaign; a stop request landing on the final window is a
    // normal completion.
    let cfg = config(5);
    let plain = deterministic(&Campaign::new(TargetId::Iec104.create(), cfg).run());
    let dir = scratch_dir("free");
    let hooks = ServiceHooks::new(cfg.executions);
    let supervised = Campaign::new(TargetId::Iec104.create(), cfg)
        .run_supervised(&CheckpointConfig::new(dir.clone(), 2).rotation(2), &hooks)
        .expect("supervised run");
    assert_eq!(supervised.executions, cfg.executions);
    assert_eq!(plain, deterministic(&supervised));
    let status = hooks.status();
    assert_eq!(status.executions, cfg.executions);
    assert_eq!(status.last_checkpoint, Some(cfg.executions));
    assert_eq!(status.paths, supervised.final_paths());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_control_socket_stop_drains_and_the_service_resumes_to_the_same_report() {
    let cfg = config(7).executions(5_000).reset_interval(100);
    let complete = deterministic(&Campaign::new(TargetId::Modbus.create(), cfg).run());

    let dir = scratch_dir("control");
    let checkpoint = CheckpointConfig::new(dir.clone(), 1).rotation(4);
    let hooks = ServiceHooks::new(cfg.executions);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind control");
    let mut control = ControlServer::start(listener, Arc::clone(&hooks)).expect("control server");
    let addr = control.addr();

    // An operator on the wire: poll `status` until the campaign has made
    // progress, then issue `stop`.
    let operator = std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        let stream = std::net::TcpStream::connect(addr).expect("connect control");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut reply = String::new();
        loop {
            writer.write_all(b"status\n").expect("send status");
            reply.clear();
            reader.read_line(&mut reply).expect("status reply");
            let executions: u64 = reply
                .split("\"executions\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|digits| digits.parse().ok())
                .expect("status carries an execution count");
            if executions > 0 {
                writer.write_all(b"stop\n").expect("send stop");
                reply.clear();
                reader.read_line(&mut reply).expect("stop reply");
                assert!(reply.contains("\"stopping\":true"), "{reply}");
                return;
            }
            std::thread::yield_now();
        }
    });

    let stopped = Campaign::new(TargetId::Modbus.create(), cfg)
        .run_supervised(&checkpoint, &hooks)
        .expect("supervised run");
    operator.join().expect("operator thread");
    control.shutdown();

    // The stop races the campaign: it may drain mid-run or land after the
    // final window. Either way the recovered service converges on the
    // uninterrupted report.
    assert!(stopped.executions <= cfg.executions);
    let snapshot = CampaignSnapshot::resume_latest(&dir)
        .expect("rotation scan")
        .expect("a checkpoint exists");
    assert_eq!(snapshot.completed, stopped.executions);
    let final_report = if snapshot.completed == cfg.executions {
        stopped
    } else {
        Campaign::new(TargetId::Modbus.create(), cfg)
            .resume(&snapshot)
            .expect("resume")
    };
    assert_eq!(complete, deterministic(&final_report), "control-socket stop diverged");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_resume_from_every_rotation_slot_converges() {
    // A checkpointed run leaves every boundary in the rotation (depth ≥
    // boundary count). Deleting the newest slot again and again simulates a
    // SIGKILL landing earlier and earlier; every surviving slot must resume
    // to the identical final report.
    let cfg = config(11);
    let dir = scratch_dir("kill");
    let checkpoint = CheckpointConfig::new(dir.clone(), 1).rotation(8);
    let complete = deterministic(
        &Campaign::new(TargetId::Iec104.create(), cfg)
            .run_checkpointed(&checkpoint)
            .expect("checkpointed run"),
    );

    let boundaries = Campaign::new(TargetId::Iec104.create(), cfg).window_boundaries();
    assert_eq!(rotation_slots(&dir).len(), boundaries.len(), "every boundary kept");
    for &boundary in boundaries.iter().rev() {
        let snapshot = CampaignSnapshot::resume_latest(&dir)
            .expect("rotation scan")
            .expect("slot restores");
        assert_eq!(snapshot.completed, boundary, "newest surviving slot");
        let resumed = Campaign::new(TargetId::Iec104.create(), cfg)
            .resume(&snapshot)
            .expect("resume");
        assert_eq!(
            complete,
            deterministic(&resumed),
            "resume from rotation slot {boundary} diverged"
        );
        let newest = rotation_slots(&dir).remove(0);
        std::fs::remove_file(newest).expect("drop the newest slot");
    }
    // With the rotation emptied the service starts fresh.
    assert!(CampaignSnapshot::resume_latest(&dir)
        .expect("rotation scan")
        .is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_flapping_server_yields_the_healthy_report_at_equal_budget() {
    // The server deterministically drops the connection three times
    // mid-campaign; journal replay restores the session each time, so the
    // final report is bit-identical to the healthy in-process run.
    let cfg = config(3);
    let healthy = deterministic(&Campaign::new(TargetId::Iec104.create(), cfg).run());
    let flapping = cfg
        .transport(TransportMode::FramedTcp)
        .reconnect(ReconnectPolicy::immediate(5))
        .wire_chaos(WireChaos::drop_every(151).limit(3));
    let report = Campaign::new(TargetId::Iec104.create(), flapping).run();
    assert_eq!(report.executions, cfg.executions);
    assert_eq!(healthy, deterministic(&report), "flapping wire changed the campaign");
}

#[test]
fn an_exhausted_connection_degrades_onto_the_survivors() {
    // One of two connections hits a server-side drop whose follow-up
    // accept-and-close rejections outlast its reconnect budget: the
    // connection is marked dead, its window is redistributed, and the
    // surviving connection finishes the campaign with the healthy report.
    let cfg = config(13);
    let healthy = deterministic(
        &ShardedCampaign::new(
            TargetId::Modbus.create(),
            cfg,
            ShardConfig::with_workers(2).sync_windows(2),
        )
        .run(),
    );
    let chaotic = cfg
        .reconnect(ReconnectPolicy::immediate(2))
        .wire_chaos(WireChaos::drop_every(137).limit(1).reject_after_drop(3));
    let report = ConnectionCampaign::new(
        TargetId::Modbus.create(),
        chaotic,
        ConnectionConfig::with_connections(2).sync_windows(2),
    )
    .run();
    assert_eq!(report.executions, cfg.executions);
    assert_eq!(healthy, deterministic(&report), "degraded campaign diverged");
}

// ---------------------------------------------------------------------------
// Property: resume-latest skips any corrupted newest-prefix of the rotation.

/// Cursor over a proptest-drawn entropy pool (the vendored proptest only
/// draws flat integer vectors); splitmix64-decorrelated on wrap-around.
struct Draw {
    words: Vec<u64>,
    at: usize,
}

impl Draw {
    fn new(words: Vec<u64>) -> Self {
        assert!(!words.is_empty());
        Self { words, at: 0 }
    }

    fn next(&mut self) -> u64 {
        let word = self.words[self.at % self.words.len()];
        self.at += 1;
        let mut z = word.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.at as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The rotation fixture: every window boundary of one small campaign,
/// encoded. Built once — the snapshots are deterministic, the corruption
/// varies per case.
fn rotation_fixture() -> &'static Vec<(u64, Vec<u8>)> {
    static FIXTURE: OnceLock<Vec<(u64, Vec<u8>)>> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cfg = config(17);
        Campaign::new(TargetId::Modbus.create(), cfg)
            .window_boundaries()
            .into_iter()
            .map(|boundary| {
                let snapshot = Campaign::new(TargetId::Modbus.create(), cfg)
                    .run_to_boundary(boundary)
                    .expect("boundary snapshot");
                (boundary, snapshot.encode())
            })
            .collect()
    })
}

/// Damages `bytes` in one of the ways a dying service can: truncation
/// (including to empty), a bit flip, or a clobbered magic.
fn corrupt(bytes: &mut Vec<u8>, draw: &mut Draw) {
    match draw.below(4) {
        0 => bytes.truncate(draw.below(bytes.len() as u64) as usize),
        1 => {
            let position = draw.below(bytes.len() as u64) as usize;
            bytes[position] ^= (draw.below(255) + 1) as u8;
        }
        2 => bytes[..8].copy_from_slice(b"NOTASNAP"),
        _ => bytes.clear(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_latest_skips_any_corrupted_newest_prefix(
        words in proptest::collection::vec(any::<u64>(), 4..32)
    ) {
        let mut draw = Draw::new(words);
        let slots = rotation_fixture();
        let dir = scratch_dir("proptest");
        std::fs::create_dir_all(&dir).expect("rotation dir");

        // Lay down the full rotation, then corrupt the newest `damaged`
        // slots — the prefix a crash mid-write (or disk fault) chews up.
        let damaged = draw.below(slots.len() as u64 + 1) as usize;
        for (index, (boundary, bytes)) in slots.iter().enumerate() {
            let mut bytes = bytes.clone();
            if index >= slots.len() - damaged {
                corrupt(&mut bytes, &mut draw);
            }
            std::fs::write(dir.join(format!("ckpt-{boundary:012}.peachsnp")), bytes)
                .expect("write slot");
        }

        let restored = CampaignSnapshot::resume_latest(&dir).expect("rotation scan");
        std::fs::remove_dir_all(&dir).ok();
        match slots.len().checked_sub(damaged + 1) {
            // The newest undamaged slot restores bit-exactly.
            Some(newest_valid) => {
                let snapshot = restored.expect("an intact slot restores");
                prop_assert_eq!(snapshot.completed, slots[newest_valid].0);
                prop_assert_eq!(snapshot.encode(), slots[newest_valid].1.clone());
            }
            // Every slot damaged: the service starts fresh, it never
            // restores garbage.
            None => prop_assert!(restored.is_none()),
        }
    }
}
