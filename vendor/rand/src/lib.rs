//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate re-implements exactly the API subset the `peachstar`
//! workspace uses from `rand` 0.8:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG
//!   (xoshiro256++ here, as in upstream `rand` 0.8 on 64-bit targets);
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`] (SplitMix64 seed
//!   expansion, matching the upstream algorithm's structure);
//! * the [`Rng`] extension trait with [`Rng::gen`], [`Rng::gen_bool`] and
//!   [`Rng::gen_range`] over integer ranges.
//!
//! Determinism is the only contract the fuzzer relies on: a given seed must
//! produce the same stream on every run and platform. The streams are *not*
//! guaranteed to match upstream `rand` bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the raw output interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array in upstream `rand`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the convenient, reproducible entry point the fuzzer uses everywhere.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut splitmix).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&value[..len]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the full value range by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty => $method:ident),+ $(,)?) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $ty
            }
        }
    )+};
}

impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, u128 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, i128 => next_u64, isize => next_u64,
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) % span) as $ty;
                self.start.wrapping_add(draw)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return <$ty as Standard>::sample(rng);
                }
                let draw = ((rng.next_u64() as u128) % span) as $ty;
                start.wrapping_add(draw)
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG: xoshiro256++.
    ///
    /// Mirrors `rand::rngs::SmallRng` on 64-bit platforms. Not
    /// cryptographically secure — exactly what a fuzzer wants.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words — the generator's exact stream
        /// position. Feeding them back through
        /// [`from_state`](SmallRng::from_state) resumes the stream
        /// bit-for-bit, which is what campaign checkpointing relies on.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`state`](SmallRng::state).
        ///
        /// The all-zero state (xoshiro's one fixed point, unreachable from
        /// any seeded generator) is nudged to the same canonical non-zero
        /// state `from_seed` uses, so a corrupted snapshot cannot produce a
        /// stuck generator.
        #[must_use]
        pub fn from_state(state: [u64; 4]) -> Self {
            if state == [0, 0, 0, 0] {
                return Self {
                    s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
                };
            }
            Self { s: state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let a_values: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let b_values: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(a_values, b_values);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
