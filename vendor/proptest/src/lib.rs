//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the API subset `peachstar`'s integration tests use: the
//! [`proptest!`] macro, [`ProptestConfig::with_cases`], `any::<T>()` for the
//! integer primitives, [`collection::vec`], and the [`prop_assert!`] /
//! [`prop_assert_eq!`] assertion macros.
//!
//! Differences from upstream, by design:
//!
//! * case generation is **deterministic** (a fixed-seed SplitMix64 stream),
//!   so failures reproduce without a persistence file;
//! * there is **no shrinking** — the failing input is printed as-is;
//! * assertion macros panic immediately instead of returning `Err`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Run-loop configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic generator driving value strategies.
pub mod test_runner {
    /// SplitMix64-based deterministic random stream for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed, documented seed: every `cargo test` run
        /// explores the same cases.
        #[must_use]
        pub fn deterministic() -> Self {
            Self {
                state: 0x5ee5_0bad_c0ff_ee00,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniformly distributed `usize` below `bound` (0 when `bound` is 0).
        pub fn below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy returned by [`crate::any`]: the full value range of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_any_int {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: each case draws a length from `size`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy size range is empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The full value range of `T` as a strategy (`any::<u8>()`).
#[must_use]
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

/// `Range<usize>` used directly where upstream takes `impl Into<SizeRange>`.
pub type SizeRange = Range<usize>;

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(pattern in strategy) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// Supports the upstream surface the repository uses: an optional leading
/// `#![proptest_config(expr)]`, doc comments / attributes on each property
/// (including the conventional `#[test]`), and one or more
/// `pattern in strategy` bindings per property.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };

    (@with_config ($config:expr)) => {};

    (@with_config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::sample(&($strat), &mut rng),
                )+);
                let run = || -> () { $body };
                // No shrinking: the stream is deterministic, so naming the
                // case index is enough to reproduce a failure.
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "property `{}` failed on deterministic case {case} of {}",
                        stringify!($name),
                        config.cases,
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };

    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn any_u8_covers_values() {
        let strategy = any::<u8>();
        let mut rng = TestRng::deterministic();
        let values: std::collections::HashSet<u8> =
            (0..256).map(|_| strategy.sample(&mut rng)).collect();
        assert!(values.len() > 100, "u8 sampling should spread out");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strategy = collection::vec(any::<u8>(), 3..9);
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, config and assertions all wired up.
        #[test]
        fn macro_generates_and_asserts(data in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(data.len() < 16);
            let doubled: Vec<u8> = data.iter().map(|b| b.wrapping_mul(2)).collect();
            prop_assert_eq!(doubled.len(), data.len());
        }
    }

    proptest! {
        /// Default config path (no inner attribute).
        #[test]
        fn macro_works_without_config(x in any::<u8>(), y in any::<u8>()) {
            prop_assert_eq!(u16::from(x) + u16::from(y), u16::from(y) + u16::from(x));
        }
    }
}
