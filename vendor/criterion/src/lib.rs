//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the `peachstar-bench` benchmarks use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `bench_function` / `finish`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a *measuring* harness, not a statistics engine: each benchmark is
//! warmed up, timed over a fixed number of samples and reported as a mean
//! ns/iter with min/max, printed to stdout. That is enough for the relative
//! A/B readings the `peachstar` benches are written for (cracking vs
//! generation cost, per-target throughput), without upstream criterion's
//! plotting and bootstrap machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] groups setup outputs into batches.
///
/// The stand-in times each routine invocation individually, so the variants
/// only express intent; all are accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; batch size chosen automatically.
    SmallInput,
    /// Large per-iteration inputs; smaller batches.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Passed to every benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up pass, untimed.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.timings.is_empty() {
            println!("{name:<48} (no samples recorded)");
            return;
        }
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        let min = self.timings.iter().min().expect("non-empty");
        let max = self.timings.iter().max().expect("non-empty");
        println!(
            "{name:<48} mean {:>12} min {:>12} max {:>12} ({} samples)",
            format_duration(mean),
            format_duration(*min),
            format_duration(*max),
            self.timings.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager: entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: the stand-in is for relative readings, and the
        // sample count can be raised per group via `sample_size`.
        let default_samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self { default_samples }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            samples: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_samples);
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }
}

/// A group of related benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Upstream criterion enforces a floor of 10; a fraction of that is
        // plenty for the stand-in's mean/min/max summary.
        self.samples = Some(samples.clamp(1, 1_000) / 5 + 1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group. (Reporting is incremental; this is a no-op kept for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions in order —
/// API-compatible subset of criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a benchmark binary running the listed
/// groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_samples() {
        let mut bencher = Bencher::new(5);
        let mut counter = 0u64;
        bencher.iter(|| {
            counter += 1;
            counter
        });
        assert_eq!(bencher.timings.len(), 5);
        assert_eq!(counter, 6, "warm-up plus five timed runs");
    }

    #[test]
    fn bencher_iter_batched_excludes_setup() {
        let mut bencher = Bencher::new(3);
        bencher.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(bencher.timings.len(), 3);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test_group");
        group.sample_size(50);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
