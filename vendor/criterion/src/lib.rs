//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the `peachstar-bench` benchmarks use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `bench_function` / `finish`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a *measuring* harness, not a statistics engine: each benchmark is
//! warmed up, timed over a fixed number of samples and reported as a
//! median/mean ns/iter with min/max, printed to stdout. That is enough for
//! the relative A/B readings the `peachstar` benches are written for
//! (cracking vs generation cost, per-target throughput), without upstream
//! criterion's plotting and bootstrap machinery.
//!
//! # Machine-readable results
//!
//! Unlike upstream, every measurement is also appended to a process-global
//! registry, and [`criterion_main!`] ends by calling [`finalize`], which
//! merges the medians into a flat JSON object (`{"group/bench": median_ns}`)
//! at the workspace root — `BENCH_results.json` next to `Cargo.lock`, or the
//! path in the `BENCH_RESULTS_PATH` environment variable. Successive bench
//! binaries merge into (rather than clobber) the same file, so one
//! `cargo bench` run leaves a complete perf snapshot behind for the
//! PR-over-PR trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Process-global registry of finished measurements, drained by [`finalize`].
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// How [`Bencher::iter_batched`] groups setup outputs into batches.
///
/// The stand-in times each routine invocation individually, so the variants
/// only express intent; all are accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; batch size chosen automatically.
    SmallInput,
    /// Large per-iteration inputs; smaller batches.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Passed to every benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up pass, untimed.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement, and — matching upstream criterion —
    /// so is disposal of the routine's output: the output is bound before
    /// the clock is read and dropped afterwards. Routines that want their
    /// teardown excluded (e.g. a strategy holding a corpus and queued
    /// packets) return the value instead of letting it drop in the timed
    /// region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            self.timings.push(start.elapsed());
            drop(output);
        }
    }

    /// Median of the recorded samples, in nanoseconds.
    fn median_nanos(&self) -> u128 {
        let mut nanos: Vec<u128> = self.timings.iter().map(Duration::as_nanos).collect();
        nanos.sort_unstable();
        match nanos.len() {
            0 => 0,
            n if n % 2 == 1 => nanos[n / 2],
            n => (nanos[n / 2 - 1] + nanos[n / 2]) / 2,
        }
    }

    fn report(&self, name: &str) {
        if self.timings.is_empty() {
            println!("{name:<48} (no samples recorded)");
            return;
        }
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        let min = self.timings.iter().min().expect("non-empty");
        let max = self.timings.iter().max().expect("non-empty");
        let median = self.median_nanos();
        println!(
            "{name:<48} median {:>12} mean {:>12} min {:>12} max {:>12} ({} samples)",
            format_duration(Duration::from_nanos(median.min(u128::from(u64::MAX)) as u64)),
            format_duration(mean),
            format_duration(*min),
            format_duration(*max),
            self.timings.len()
        );
        RESULTS
            .lock()
            .expect("results registry lock")
            .push((name.to_string(), median));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager: entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
    /// `CRITERION_SAMPLES` override. Takes precedence over per-group
    /// [`BenchmarkGroup::sample_size`] settings, so smoke runs (CI sets
    /// `CRITERION_SAMPLES=2`) genuinely shorten every benchmark.
    env_samples: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: the stand-in is for relative readings, and the
        // sample count can be raised per group via `sample_size`.
        let env_samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok());
        Self {
            default_samples: env_samples.unwrap_or(10),
            env_samples,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            samples: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_samples);
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }
}

/// A group of related benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    ///
    /// A `CRITERION_SAMPLES` environment override beats this setting, so
    /// smoke runs stay short even for groups that ask for more samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Upstream criterion enforces a floor of 10; a fraction of that is
        // plenty for the stand-in's median/mean/min/max summary.
        self.samples = Some(samples.clamp(1, 1_000) / 5 + 1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self
            .criterion
            .env_samples
            .or(self.samples)
            .unwrap_or(self.criterion.default_samples);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group. (Reporting is incremental; this is a no-op kept for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// Where the machine-readable results go: `$BENCH_RESULTS_PATH` when set,
/// otherwise `BENCH_results.json` next to the nearest ancestor `Cargo.lock`
/// (the workspace root — `cargo bench` sets the bench binary's working
/// directory to the *package* root, which for a workspace member is not
/// where the trajectory file should live). Falls back to the current
/// directory when no lockfile is found.
fn results_path() -> PathBuf {
    if let Ok(path) = std::env::var("BENCH_RESULTS_PATH") {
        return PathBuf::from(path);
    }
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = Some(start.as_path());
    while let Some(candidate) = dir {
        if candidate.join("Cargo.lock").is_file() {
            return candidate.join("BENCH_results.json");
        }
        dir = candidate.parent();
    }
    start.join("BENCH_results.json")
}

/// Parses the flat JSON object this harness writes (`{"name": nanos, ...}`).
///
/// Only the subset the writer produces is supported: string keys without
/// escapes and non-negative numeric values. Anything else is ignored rather
/// than an error, so a hand-edited file degrades gracefully.
fn parse_flat_json(text: &str) -> Vec<(String, u128)> {
    let mut entries = Vec::new();
    let mut chars = text.chars().peekable();
    // Scan to each string key in turn.
    while chars.find(|&c| c == '"').is_some() {
        let key: String = chars.by_ref().take_while(|&c| c != '"').collect();
        // Expect a colon before the value; bail to the next key otherwise.
        match chars.find(|c| !c.is_whitespace()) {
            Some(':') => {}
            _ => continue,
        }
        let mut value = String::new();
        while let Some(&c) = chars.peek() {
            if c.is_ascii_digit() || c == '.' {
                value.push(c);
                chars.next();
            } else if c.is_whitespace() && value.is_empty() {
                chars.next();
            } else {
                break;
            }
        }
        if let Ok(parsed) = value.parse::<f64>() {
            if parsed >= 0.0 {
                entries.push((key, parsed as u128));
            }
        }
    }
    entries
}

/// Serialises entries as a flat, sorted, two-space-indented JSON object.
fn render_flat_json(entries: &[(String, u128)]) -> String {
    let mut out = String::from("{\n");
    for (index, (name, nanos)) in entries.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": {nanos}"));
        out.push_str(if index + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out.push('\n');
    out
}

/// Writes the registry's medians to the results file, merging with whatever
/// a previous bench binary left there, and returns the path written (or
/// `None` when no measurement was recorded).
///
/// Called automatically at the end of [`criterion_main!`]'s generated
/// `main`; only bench binaries reach it, so unit-test runs never touch the
/// filesystem.
pub fn finalize() -> Option<PathBuf> {
    let fresh: Vec<(String, u128)> =
        std::mem::take(&mut *RESULTS.lock().expect("results registry lock"));
    if fresh.is_empty() {
        return None;
    }
    let path = results_path();
    let mut merged: Vec<(String, u128)> = std::fs::read_to_string(&path)
        .map(|text| parse_flat_json(&text))
        .unwrap_or_default();
    for (name, nanos) in fresh {
        match merged.iter_mut().find(|(existing, _)| *existing == name) {
            Some(entry) => entry.1 = nanos,
            None => merged.push((name, nanos)),
        }
    }
    merged.sort();
    match std::fs::write(&path, render_flat_json(&merged)) {
        Ok(()) => {
            println!("\nbench medians written to {}", path.display());
            Some(path)
        }
        Err(error) => {
            eprintln!("warning: could not write {}: {error}", path.display());
            None
        }
    }
}

/// Declares a function that runs the listed benchmark functions in order —
/// API-compatible subset of criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a benchmark binary running the listed
/// groups, then writes the merged `BENCH_results.json` via [`finalize`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let _ = $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_samples() {
        let mut bencher = Bencher::new(5);
        let mut counter = 0u64;
        bencher.iter(|| {
            counter += 1;
            counter
        });
        assert_eq!(bencher.timings.len(), 5);
        assert_eq!(counter, 6, "warm-up plus five timed runs");
    }

    #[test]
    fn bencher_iter_batched_excludes_setup() {
        let mut bencher = Bencher::new(3);
        bencher.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(bencher.timings.len(), 3);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test_group");
        group.sample_size(50);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn median_is_order_independent() {
        let mut bencher = Bencher::new(0);
        bencher.timings = vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        assert_eq!(bencher.median_nanos(), 20);
        bencher.timings.push(Duration::from_nanos(40));
        assert_eq!(bencher.median_nanos(), 25, "even count averages the middle pair");
        assert_eq!(Bencher::new(0).median_nanos(), 0, "no samples → zero");
    }

    #[test]
    fn flat_json_round_trips_and_merges() {
        let entries = vec![
            ("group/alpha".to_string(), 120u128),
            ("group/beta".to_string(), 34_500u128),
        ];
        let text = render_flat_json(&entries);
        assert!(text.starts_with("{\n"));
        assert!(text.trim_end().ends_with('}'));
        assert_eq!(parse_flat_json(&text), entries);
        // Tolerates floats and ignores malformed entries.
        let parsed = parse_flat_json("{\"a\": 1.5, \"broken\": , \"b\": 2}");
        assert_eq!(parsed, vec![("a".to_string(), 1), ("b".to_string(), 2)]);
        assert!(parse_flat_json("").is_empty());
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
