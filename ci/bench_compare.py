#!/usr/bin/env python3
"""Compare freshly measured bench medians against the committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [FRESH2.json ...]
                     [--threshold 0.25]
                     [--groups campaign,coverage_map,generation,targets]

All files are flat ``{"group/bench": median_ns}`` objects as written by the
vendored criterion harness. When several fresh files are given (repeated
measurement runs), the per-bench minimum is compared — timing noise only
ever inflates a median, so min-of-k is the robust statistic for regression
detection. For every bench of the gated groups that exists in both the
baseline and the fresh results, the relative regression
``fresh / baseline - 1`` is computed; the script exits non-zero when any
regression exceeds the threshold, or when a gated baseline bench
disappeared from the fresh results. Benches new in the fresh results are
reported but never fail the check (they have no baseline yet). On failure,
the stderr summary lists the per-bench deltas of every offender, and the
stdout table has already printed the delta of every gated bench.

Medians are wall-clock and therefore machine-dependent: the committed
baseline is meaningful on hardware comparable to the machine that produced
it. On shared CI runners, treat failures as a signal to re-measure, not as
proof of a regression.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        results = json.load(handle)
    if not isinstance(results, dict) or not results:
        raise SystemExit(f"{path}: expected a non-empty JSON object")
    bad = {
        name: value
        for name, value in results.items()
        if not isinstance(value, (int, float)) or value <= 0
    }
    if bad:
        raise SystemExit(f"{path}: non-positive or non-numeric medians: {bad}")
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_results.json")
    parser.add_argument(
        "fresh",
        nargs="+",
        help="freshly produced results (several files = repeated runs, compared by per-bench minimum)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative regression (default: 0.25 = +25%%)",
    )
    parser.add_argument(
        "--groups",
        default="campaign,coverage_map,generation,targets",
        help=(
            "comma-separated bench groups to gate "
            "(default: campaign,coverage_map,generation,targets)"
        ),
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = {}
    for path in args.fresh:
        for name, median in load(path).items():
            fresh[name] = min(median, fresh.get(name, median))
    groups = {group.strip() for group in args.groups.split(",") if group.strip()}

    def gated(name):
        return name.split("/")[0] in groups

    failures = []
    rows = []
    for name in sorted(set(baseline) | set(fresh)):
        if not gated(name):
            continue
        if name not in fresh:
            failures.append(f"{name}: present in baseline but missing from fresh results")
            continue
        if name not in baseline:
            rows.append((name, None, fresh[name], None, "new"))
            continue
        delta = fresh[name] / baseline[name] - 1.0
        status = "ok"
        if delta > args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: {baseline[name]:.0f} ns -> {fresh[name]:.0f} ns "
                f"({delta:+.1%}, threshold +{args.threshold:.0%})"
            )
        rows.append((name, baseline[name], fresh[name], delta, status))

    if not rows:
        raise SystemExit(f"no benches found for gated groups {sorted(groups)}")

    width = max(len(name) for name, *_ in rows)
    print(f"{'bench':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}  status")
    for name, base, new, delta, status in rows:
        base_text = f"{base:.0f}" if base is not None else "-"
        delta_text = f"{delta:+.1%}" if delta is not None else "-"
        print(f"{name:<{width}}  {base_text:>12}  {new:>12.0f}  {delta_text:>8}  {status}")

    if failures:
        print(f"\n{len(failures)} gated bench(es) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} gated benches within +{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
