#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files/directories.

Usage: python3 ci/check_links.py README.md docs/ARCHITECTURE.md ...

For every `[text](target)` link in the given files:
  * external links (a scheme like https:, mailto:) are skipped;
  * pure fragments (#section) are checked against the file's own headings;
  * relative paths are resolved against the file's directory and must exist
    (an optional #fragment is checked against the target's headings when the
    target is a markdown file).

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
FENCE = re.compile(r"^(```|~~~).*?^\1[^\n]*$", re.MULTILINE | re.DOTALL)

_ANCHOR_CACHE: dict[Path, set[str]] = {}


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (best-effort, matching gfm rules)."""
    # Drop inline code/emphasis markers and escapes, lowercase, then keep
    # word characters and hyphens (spaces become hyphens).
    text = heading.strip().lower()
    text = re.sub(r"[`*_\\]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    if path in _ANCHOR_CACHE:
        return _ANCHOR_CACHE[path]
    try:
        content = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        content = ""
    # Drop fenced code blocks first: a `# comment` inside a fence is not a
    # heading and must not satisfy a fragment link.
    content = FENCE.sub("", content)
    anchors = {github_anchor(m.group(1)) for m in HEADING.finditer(content)}
    _ANCHOR_CACHE[path] = anchors
    return anchors


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    # Strip fenced code blocks first (as anchors_of does): bracket-paren
    # syntax inside a snippet is code, not a markdown link.
    content = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(content):
        target = match.group(1)
        if SCHEME.match(target):
            continue  # external
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_of(path):
                errors.append(f"{path}: broken fragment `{target}`")
            continue
        raw, _, fragment = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link `{target}` -> {resolved}")
            continue
        if fragment and resolved.suffix.lower() == ".md":
            if github_anchor(fragment) not in anchors_of(resolved):
                errors.append(
                    f"{path}: `{raw}` exists but fragment `#{fragment}` "
                    f"matches no heading"
                )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    if errors:
        print("broken markdown links:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"OK: all relative links in {len(argv)} file(s) resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
