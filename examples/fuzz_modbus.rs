//! Compare Peach and Peach\* head-to-head on the Modbus/TCP target — a
//! miniature version of one Figure 4 sub-plot, including the bugs of the
//! libmodbus row of Table I.
//!
//! ```text
//! cargo run -p peachstar --release --example fuzz_modbus
//! ```

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

fn main() {
    let executions = 30_000;
    println!("libmodbus, {executions} executions per fuzzer\n");
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>12}",
        "fuzzer", "paths", "bugs", "validity", "corpus"
    );

    let mut final_paths = Vec::new();
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let config = CampaignConfig::new(strategy)
            .executions(executions)
            .rng_seed(7);
        let report = Campaign::new(TargetId::Modbus.create(), config).run();
        println!(
            "{:<10} {:>8} {:>8} {:>9.1}% {:>12}",
            strategy.label(),
            report.final_paths(),
            report.unique_bugs(),
            report.validity_ratio() * 100.0,
            report.corpus_size
        );
        for bug in &report.bugs {
            println!(
                "           -> {} (execution {})",
                bug.fault, bug.first_execution
            );
        }
        final_paths.push(report.final_paths());
    }

    if let [peach, peachstar] = final_paths[..] {
        let gain = (peachstar as f64 - peach as f64) / peach.max(1) as f64 * 100.0;
        println!("\nPeach* path gain over Peach: {gain:+.1}%");
    }
}
