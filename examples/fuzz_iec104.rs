//! Fuzz the two IEC 60870-5-104 implementations (the `IEC104` project and
//! `lib60870`) with Peach\* and show how the same wire format yields
//! different coverage landscapes and different bugs — lib60870 carries the
//! `CS101_ASDU_getCOT` SEGV from Listing 1 of the paper.
//!
//! ```text
//! cargo run -p peachstar --release --example fuzz_iec104
//! ```

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

fn main() {
    for target in [TargetId::Iec104, TargetId::Lib60870] {
        let config = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(25_000)
            .rng_seed(1234);
        let report = Campaign::new(target.create(), config).run();
        println!("=== {} ===", target.project_name());
        println!("{report}");
        if report.bugs.is_empty() {
            println!("  no faults triggered");
        }
        for bug in &report.bugs {
            println!(
                "  {} first triggered at execution {}",
                bug.fault, bug.first_execution
            );
            println!(
                "    packet ({} bytes): {}",
                bug.packet.len(),
                bug.packet
                    .iter()
                    .map(|byte| format!("{byte:02x}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        println!();
    }
}
