//! Bring your own protocol: define a packet format with the Pit DSL, wrap a
//! tiny hand-written parser as a fuzzing [`Target`], and fuzz it with
//! Peach\*.
//!
//! This is the path a downstream user takes to fuzz a protocol that is not
//! one of the six built-in targets.
//!
//! ```text
//! cargo run -p peachstar --release --example custom_protocol
//! ```

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::pit::parse_pit;
use peachstar_datamodel::DataModelSet;
use peachstar_protocols::{Fault, FaultKind, Outcome, Target};

/// The format specification, written in the Pit DSL instead of Rust.
const PIT: &str = "\
# A toy sensor-gateway protocol: one header, two commands.
model read_sensor
  number magic width=2 endian=be value=0xCAFE
  number opcode width=1 value=1
  number sensor width=1 rule=sensor-id
  number count width=1 default=1

model write_limit
  number magic width=2 endian=be value=0xCAFE
  number opcode width=1 value=2
  number sensor width=1 rule=sensor-id
  number limit width=2 endian=be default=100
  number checksum width=1 sum8=limit
";

/// A small stateful gateway with eight sensors and a planted off-by-one.
struct SensorGateway {
    limits: Vec<u16>,
    models: DataModelSet,
}

impl SensorGateway {
    fn new() -> Self {
        Self {
            limits: vec![100; 8],
            models: parse_pit("sensor-gateway", PIT).expect("pit parses"),
        }
    }
}

impl Target for SensorGateway {
    fn name(&self) -> &'static str {
        "sensor-gateway"
    }

    fn data_models(&self) -> DataModelSet {
        self.models.clone()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        if packet.len() < 4 || packet[0] != 0xCA || packet[1] != 0xFE {
            cov_edge!(ctx);
            return Outcome::ProtocolError("bad magic".into());
        }
        let sensor = usize::from(packet[3]);
        match packet[2] {
            1 => {
                cov_edge!(ctx);
                if sensor >= self.limits.len() {
                    cov_edge!(ctx);
                    return Outcome::ProtocolError("unknown sensor".into());
                }
                cov_edge!(ctx, sensor);
                Outcome::Response(self.limits[sensor].to_be_bytes().to_vec())
            }
            2 => {
                cov_edge!(ctx);
                if packet.len() < 7 {
                    cov_edge!(ctx);
                    return Outcome::ProtocolError("short write".into());
                }
                // Planted bug: the bounds check is off by one.
                if sensor > self.limits.len() {
                    cov_edge!(ctx);
                    return Outcome::ProtocolError("unknown sensor".into());
                }
                if sensor == self.limits.len() {
                    cov_edge!(ctx);
                    return Outcome::Fault(Fault::new(
                        FaultKind::HeapBufferOverflow,
                        "gateway.c:write_limit",
                    ));
                }
                let limit = u16::from_be_bytes([packet[4], packet[5]]);
                cov_edge!(ctx, sensor);
                self.limits[sensor] = limit;
                Outcome::Response(vec![0x00])
            }
            _ => {
                cov_edge!(ctx);
                Outcome::ProtocolError("unknown opcode".into())
            }
        }
    }

    fn reset(&mut self) {
        self.limits = vec![100; 8];
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(SensorGateway::new())
    }
}

fn main() {
    let config = CampaignConfig::new(StrategyKind::PeachStar)
        .executions(15_000)
        .rng_seed(99);
    let report = Campaign::new(Box::new(SensorGateway::new()), config).run();
    println!("{report}");
    for bug in &report.bugs {
        println!(
            "found the planted bug: {} at execution {}",
            bug.fault, bug.first_execution
        );
    }
}
