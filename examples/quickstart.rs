//! Quickstart: run a short Peach\* campaign against the Modbus target and
//! print what the coverage-guided packet crack and generation found.
//!
//! ```text
//! cargo run -p peachstar --release --example quickstart
//! ```

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

fn main() {
    // 1. Pick a target. Each target bundles an instrumented protocol server
    //    and the Peach-pit style data models of its packets.
    let target = TargetId::Modbus;
    println!(
        "fuzzing {} ({} packet-type models)",
        target,
        target.create().data_models().len()
    );

    // 2. Configure a campaign: Peach* strategy, 20k packet executions.
    let config = CampaignConfig::new(StrategyKind::PeachStar)
        .executions(20_000)
        .rng_seed(42);

    // 3. Run it. The campaign feeds generated packets to the target, keeps
    //    the valuable ones (new coverage), cracks them into puzzles and uses
    //    those puzzles to assemble higher-quality packets.
    let report = Campaign::new(target.create(), config).run();

    // 4. Inspect the results.
    println!("{report}");
    println!("  valuable seeds retained : {}", report.valuable_seeds);
    println!("  puzzle corpus size      : {}", report.corpus_size);
    println!("  packets answered        : {}", report.responses);
    println!("  packets rejected        : {}", report.protocol_errors);
    for bug in &report.bugs {
        println!(
            "  bug: {} first seen at execution {} (model {})",
            bug.fault, bug.first_execution, bug.model
        );
    }
    println!("coverage growth (executions -> paths):");
    for point in report.series.points().iter().step_by(10) {
        println!("  {:>7} -> {}", point.executions, point.paths);
    }
}
